#include "eval/fixpoint.h"

#include <vector>

namespace chronolog {

namespace {

Status TooLarge(uint64_t max_facts) {
  return ResourceExhaustedError(
      "fixpoint exceeded max_facts = " + std::to_string(max_facts) +
      "; raise FixpointOptions::max_facts if the workload is legitimate");
}

/// True when the fact survives truncation to `[0...max_time]`.
bool WithinBound(const Vocabulary& vocab, const GroundAtom& fact,
                 int64_t max_time) {
  return !vocab.predicate(fact.pred).is_temporal || fact.time <= max_time;
}

}  // namespace

Result<Interpretation> ApplyTp(const Program& program, const Database& db,
                               const Interpretation& interp,
                               const FixpointOptions& options,
                               EvalStats* stats) {
  Interpretation out(program.vocab_ptr());
  const Vocabulary& vocab = program.vocab();
  bool overflow = false;
  for (const GroundAtom& f : db.facts()) {
    if (WithinBound(vocab, f, options.max_time)) out.Insert(f);
  }
  for (const Rule& rule : program.rules()) {
    RuleEvaluator evaluator(rule, vocab, options.use_index);
    evaluator.Evaluate(interp, /*delta=*/nullptr, /*delta_pos=*/-1,
                       /*time_binding=*/std::nullopt, stats,
                       [&](GroundAtom&& fact) {
                         if (!WithinBound(vocab, fact, options.max_time)) {
                           return;
                         }
                         if (out.Insert(std::move(fact)) && stats != nullptr) {
                           ++stats->inserted;
                         }
                         if (out.size() > options.max_facts) overflow = true;
                       });
    if (overflow) return TooLarge(options.max_facts);
  }
  return out;
}

Result<Interpretation> NaiveFixpoint(const Program& program,
                                     const Database& db,
                                     const FixpointOptions& options,
                                     EvalStats* stats) {
  Interpretation current(program.vocab_ptr());
  current.InsertDatabase(db);
  current.TruncateInPlace(options.max_time);
  while (true) {
    if (stats != nullptr) ++stats->iterations;
    CHRONOLOG_ASSIGN_OR_RETURN(Interpretation next,
                               ApplyTp(program, db, current, options, stats));
    if (next.SegmentEquals(current, options.max_time,
                           /*and_non_temporal=*/true)) {
      return next;
    }
    current = std::move(next);
  }
}

Result<Interpretation> SemiNaiveFixpoint(const Program& program,
                                         const Database& db,
                                         const FixpointOptions& options,
                                         EvalStats* stats) {
  const Vocabulary& vocab = program.vocab();
  Interpretation full(program.vocab_ptr());
  Interpretation delta(program.vocab_ptr());
  for (const GroundAtom& f : db.facts()) {
    if (!WithinBound(vocab, f, options.max_time)) continue;
    if (full.Insert(f)) delta.Insert(f);
  }

  std::vector<RuleEvaluator> evaluators;
  evaluators.reserve(program.rules().size());
  for (const Rule& rule : program.rules()) {
    evaluators.emplace_back(rule, vocab, options.use_index);
  }

  while (!delta.empty()) {
    if (stats != nullptr) ++stats->iterations;
    // Derivations are buffered into `next_delta` and merged into `full`
    // after the round: inserting into `full` mid-evaluation would invalidate
    // the tuple-set iterators the rule evaluator is walking.
    Interpretation next_delta(program.vocab_ptr());
    bool overflow = false;
    for (std::size_t ri = 0; ri < program.rules().size(); ++ri) {
      const Rule& rule = program.rules()[ri];
      for (int pos = 0; pos < static_cast<int>(rule.body.size()); ++pos) {
        evaluators[ri].Evaluate(
            full, &delta, pos, /*time_binding=*/std::nullopt, stats,
            [&](GroundAtom&& fact) {
              if (!WithinBound(vocab, fact, options.max_time)) return;
              if (full.Contains(fact)) return;
              next_delta.Insert(std::move(fact));
              if (full.size() + next_delta.size() > options.max_facts) {
                overflow = true;
              }
            });
        if (overflow) return TooLarge(options.max_facts);
      }
    }
    next_delta.ForEach([&](PredicateId pred, int64_t time, const Tuple& args) {
      if (full.Insert(pred, time, args) && stats != nullptr) {
        ++stats->inserted;
      }
    });
    delta = std::move(next_delta);
  }
  return full;
}

}  // namespace chronolog
