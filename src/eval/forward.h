#ifndef CHRONOLOG_EVAL_FORWARD_H_
#define CHRONOLOG_EVAL_FORWARD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ast/program.h"
#include "eval/rule_eval.h"
#include "storage/interpretation.h"
#include "storage/state.h"
#include "util/result.h"

namespace chronolog {

class MetricsRegistry;
class TraceBuffer;

/// A period `(b, p)` of a least model in the paper's convention
/// (Section 3.2): `M[t] = M[t+p]` for all `t >= b + c`, where `c` is the
/// maximum temporal depth in the database.
struct Period {
  int64_t b = 0;
  int64_t p = 1;

  friend bool operator==(const Period& a, const Period& b) {
    return a.b == b.b && a.p == b.p;
  }
};

/// Whether a program is *progressive*: information flows forward in time
/// only, so the least model can be computed timestep by timestep and its
/// minimal period detected exactly (deterministic orbit of state windows).
///
/// A program is progressive when every rule satisfies all of:
///  1. it is semi-normal (at most one temporal variable);
///  2. it contains no ground temporal terms;
///  3. a temporal head `P(T+a, x)` only has temporal body atoms `Q(T+b, y)`
///     with `b <= a`;
///  4. a non-temporal head has a purely non-temporal body.
///
/// Every normal program produced by the paper's constructions (inflationary
/// examples, multi-separable programs, temporalised Datalog) is progressive.
struct ProgressivityReport {
  bool progressive = true;
  std::string reason;  // first violated condition, for diagnostics
};

ProgressivityReport CheckProgressive(const Program& program);

struct ForwardOptions {
  /// Upper bound on simulated timesteps before giving up with
  /// kResourceExhausted (the period of an arbitrary TDD can be exponential —
  /// Theorem 3.1 — so a guard is mandatory).
  int64_t max_steps = 1'000'000;
  uint64_t max_facts = 50'000'000;
  /// Observability sinks (chronolog_obs); null disables collection.
  MetricsRegistry* metrics = nullptr;
  TraceBuffer* trace = nullptr;
  /// When non-null, a successful simulation snapshots its cached join plans
  /// into `*plan_report` (overwritten wholesale, indexed like
  /// Program::rules()) before returning — the raw material of EXPLAIN.
  RulePlanReport* plan_report = nullptr;
};

/// Result of a forward simulation run.
struct ForwardResult {
  /// The least model materialised on `[0...horizon]`.
  Interpretation model;
  /// Minimal period of the least model.
  Period period;
  /// Maximum temporal depth `c` of the database.
  int64_t c = 0;
  /// Last timestep materialised (>= b + c + 2p - 1, enough for a
  /// relational specification). Per-time states are not materialised — the
  /// simulator reads the model's incrementally maintained snapshot hashes;
  /// callers that want explicit states use ExtractStates(model, 0, horizon).
  int64_t horizon = 0;
  EvalStats stats;
};

/// Computes the least model of a *progressive* program timestep by timestep
/// and detects its minimal period exactly: past the database horizon the
/// sequence of state windows evolves deterministically, so the first
/// repeated window marks the entry to the cycle and the exact cycle length.
/// Fails with kFailedPrecondition when the program is not progressive and
/// with kResourceExhausted when no period appears within `max_steps`.
Result<ForwardResult> ForwardSimulate(const Program& program,
                                      const Database& db,
                                      const ForwardOptions& options = {});

}  // namespace chronolog

#endif  // CHRONOLOG_EVAL_FORWARD_H_
