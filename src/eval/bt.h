#ifndef CHRONOLOG_EVAL_BT_H_
#define CHRONOLOG_EVAL_BT_H_

#include <cstdint>
#include <optional>

#include "ast/program.h"
#include "eval/fixpoint.h"
#include "storage/interpretation.h"
#include "util/result.h"

namespace chronolog {

/// Options for algorithm BT (paper, Figure 1).
struct BtOptions {
  /// The paper's `range(Z ∧ D)`: the number of different states of the least
  /// model. BT computes its working bound as `m = max(c, h) + range`.
  /// Obtain it from a periodicity analysis (spec/period.h) or from the class
  /// bounds of Sections 5/6 (analysis/). Exactly one of `range` / `horizon`
  /// must be set.
  std::optional<int64_t> range;

  /// Direct override of the working bound `m` (used by tests and by the
  /// depth-scaling benchmark E4).
  std::optional<int64_t> horizon;

  /// Use the semi-naive fixpoint internally. Figure 1 iterates the full
  /// operator (naive); both produce the identical truncated least model.
  /// Defaults to semi-naive: the naive loop re-derives the whole model on
  /// every pass and is retired from production use — it survives only as
  /// the reference oracle the equivalence tests compare against (set this
  /// to false to reach it).
  bool semi_naive = true;

  uint64_t max_facts = 50'000'000;

  /// Worker threads for the semi-naive fixpoint (ignored by the naive
  /// path); 1 = sequential. The result is thread-count independent.
  int num_threads = DefaultFixpointThreads();

  /// Observability sinks (chronolog_obs), forwarded to the underlying
  /// fixpoint; null disables collection.
  MetricsRegistry* metrics = nullptr;
  TraceBuffer* trace = nullptr;
};

/// Outcome of a BT run for a ground atomic query.
struct BtResult {
  bool answer = false;
  /// The bound `m = max(c, h) + range` actually used.
  int64_t m = 0;
  /// The truncated least model `L` computed by the loop; reusable for
  /// further queries of depth <= m.
  Interpretation model;
  EvalStats stats;
};

/// Algorithm BT: decides `M_{Z∧D} |= query` for a ground atomic temporal
/// query by computing the least model truncated to the segment `[0...m]`
/// (Theorem 4.1). Polynomial in `max(n, c, h)` whenever the period — and
/// hence `range(Z∧D)` — is polynomially bounded.
Result<BtResult> RunBt(const Program& program, const Database& db,
                       const GroundAtom& query, const BtOptions& options);

}  // namespace chronolog

#endif  // CHRONOLOG_EVAL_BT_H_
