#include "ast/parser.h"

#include <cassert>

namespace chronolog {

namespace {

std::string At(int line, int column) {
  return " at line " + std::to_string(line) + ", column " +
         std::to_string(column);
}

Status Unexpected(const Token& tok, std::string_view expected) {
  return InvalidArgumentError("expected " + std::string(expected) + " but found " +
                              std::string(TokenKindToString(tok.kind)) +
                              (tok.text.empty() ? "" : " '" + tok.text + "'") +
                              At(tok.line, tok.column));
}

}  // namespace

Parser::Parser(std::shared_ptr<Vocabulary> vocab)
    : vocab_(vocab ? std::move(vocab) : std::make_shared<Vocabulary>()) {
  // Seed predicate states from the pre-existing vocabulary: signatures of
  // already-known predicates are binding.
  for (PredicateId id : vocab_->AllPredicates()) {
    const PredicateInfo& info = vocab_->predicate(id);
    PredState state;
    state.written_arity = info.written_arity();
    state.sort = info.is_temporal ? Sort::kTemporal : Sort::kNonTemporal;
    state.pinned = true;
    pred_states_.emplace(info.name, state);
  }
}

Status Parser::AddSource(std::string_view source, std::string unit_name) {
  if (finished_) {
    return FailedPreconditionError("Parser::AddSource called after Finish");
  }
  unit_names_.push_back(std::move(unit_name));
  CHRONOLOG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  return ParseUnitTokens(tokens);
}

std::string Parser::Where(int line, int column, int32_t unit) const {
  std::string out = At(line, column);
  if (unit >= 0 && static_cast<std::size_t>(unit) < unit_names_.size() &&
      unit_names_[unit] != "<input>") {
    out += " of " + unit_names_[unit];
  }
  return out;
}

Status Parser::ParseUnitTokens(const std::vector<Token>& tokens) {
  std::size_t pos = 0;
  while (tokens[pos].kind != TokenKind::kEof) {
    if (tokens[pos].kind == TokenKind::kAt) {
      CHRONOLOG_RETURN_IF_ERROR(ParseDirective(tokens, &pos));
      continue;
    }
    RawClause clause;
    CHRONOLOG_ASSIGN_OR_RETURN(clause.head, ParseRawAtom(tokens, &pos));
    if (tokens[pos].kind == TokenKind::kColonDash) {
      ++pos;
      clause.is_rule = true;
      while (true) {
        CHRONOLOG_ASSIGN_OR_RETURN(RawAtom atom, ParseRawAtom(tokens, &pos));
        clause.body.push_back(std::move(atom));
        if (tokens[pos].kind == TokenKind::kComma) {
          ++pos;
          continue;
        }
        break;
      }
    }
    if (tokens[pos].kind != TokenKind::kDot) {
      return Unexpected(tokens[pos], "'.' terminating the clause");
    }
    ++pos;
    CHRONOLOG_RETURN_IF_ERROR(NotePredicate(clause.head));
    for (const RawAtom& a : clause.body) {
      CHRONOLOG_RETURN_IF_ERROR(NotePredicate(a));
    }
    clauses_.push_back(std::move(clause));
  }
  return Status::Ok();
}

Status Parser::ParseDirective(const std::vector<Token>& tokens,
                              std::size_t* pos) {
  const Token& at = tokens[*pos];
  ++*pos;  // consume '@'
  const Token& kw = tokens[*pos];
  if (kw.kind != TokenKind::kIdent ||
      (kw.text != "temporal" && kw.text != "predicate")) {
    return Unexpected(kw, "'temporal' or 'predicate' after '@'");
  }
  const bool temporal = kw.text == "temporal";
  ++*pos;
  const Token& name = tokens[*pos];
  if (name.kind != TokenKind::kIdent) {
    return Unexpected(name, "predicate name in @temporal directive");
  }
  ++*pos;
  if (tokens[*pos].kind != TokenKind::kSlash) {
    return Unexpected(tokens[*pos], "'/' in @temporal directive");
  }
  ++*pos;
  const Token& arity = tokens[*pos];
  if (arity.kind != TokenKind::kInt) {
    return Unexpected(arity, "arity in @temporal directive");
  }
  ++*pos;
  if (tokens[*pos].kind != TokenKind::kDot) {
    return Unexpected(tokens[*pos], "'.' terminating the directive");
  }
  ++*pos;

  if (temporal && arity.int_value == 0) {
    return InvalidArgumentError(
        "@temporal predicate must have at least the temporal argument" +
        At(at.line, at.column));
  }
  const Sort declared = temporal ? Sort::kTemporal : Sort::kNonTemporal;
  auto [it, inserted] = pred_states_.try_emplace(name.text);
  PredState& state = it->second;
  if (!inserted) {
    if (state.written_arity != arity.int_value) {
      return InvalidArgumentError(
          "@" + kw.text + " " + name.text + "/" +
          std::to_string(arity.int_value) +
          " conflicts with previous arity " +
          std::to_string(state.written_arity) + At(at.line, at.column));
    }
    if (state.sort != Sort::kUnknown && state.sort != declared) {
      return InvalidArgumentError("@" + kw.text + " " + name.text +
                                  " conflicts with previous usage" +
                                  At(at.line, at.column));
    }
  } else {
    state.written_arity = static_cast<uint32_t>(arity.int_value);
  }
  state.sort = declared;
  state.pinned = true;
  state.line = at.line;
  state.column = at.column;
  state.unit = static_cast<int32_t>(unit_names_.size()) - 1;
  return Status::Ok();
}

Result<Parser::RawAtom> Parser::ParseRawAtom(const std::vector<Token>& tokens,
                                             std::size_t* pos) {
  const Token& name = tokens[*pos];
  if (name.kind != TokenKind::kIdent) {
    return Unexpected(name, "predicate name");
  }
  RawAtom atom;
  atom.pred = name.text;
  atom.line = name.line;
  atom.column = name.column;
  atom.unit = static_cast<int32_t>(unit_names_.size()) - 1;
  ++*pos;
  if (tokens[*pos].kind != TokenKind::kLParen) {
    return atom;  // zero-ary predicate
  }
  ++*pos;
  while (true) {
    CHRONOLOG_ASSIGN_OR_RETURN(RawTerm term, ParseRawTerm(tokens, pos));
    atom.args.push_back(std::move(term));
    if (tokens[*pos].kind == TokenKind::kComma) {
      ++*pos;
      continue;
    }
    break;
  }
  if (tokens[*pos].kind != TokenKind::kRParen) {
    return Unexpected(tokens[*pos], "')' closing the argument list");
  }
  ++*pos;
  return atom;
}

Result<Parser::RawTerm> Parser::ParseRawTerm(const std::vector<Token>& tokens,
                                             std::size_t* pos) {
  const Token& tok = tokens[*pos];
  RawTerm term;
  term.line = tok.line;
  term.column = tok.column;
  switch (tok.kind) {
    case TokenKind::kInt:
      term.kind = RawTerm::Kind::kInt;
      term.value = tok.int_value;
      ++*pos;
      // Interval abbreviation `lo..hi` (paper, Section 2, footnote 1):
      // a fact over every time point of the closed interval.
      if (tokens[*pos].kind == TokenKind::kDot &&
          tokens[*pos + 1].kind == TokenKind::kDot) {
        *pos += 2;
        const Token& hi = tokens[*pos];
        if (hi.kind != TokenKind::kInt) {
          return Unexpected(hi, "upper bound after '..'");
        }
        if (hi.int_value < term.value) {
          return InvalidArgumentError(
              "empty interval " + std::to_string(term.value) + ".." +
              std::to_string(hi.int_value) + At(hi.line, hi.column));
        }
        if (hi.int_value - term.value > 1'000'000) {
          return InvalidArgumentError(
              "interval " + std::to_string(term.value) + ".." +
              std::to_string(hi.int_value) +
              " expands to more than 1000000 facts" + At(hi.line, hi.column));
        }
        term.kind = RawTerm::Kind::kInterval;
        term.value_hi = hi.int_value;
        ++*pos;
      }
      return term;
    case TokenKind::kIdent:
      term.kind = RawTerm::Kind::kConst;
      term.text = tok.text;
      ++*pos;
      return term;
    case TokenKind::kVar: {
      term.kind = RawTerm::Kind::kVar;
      term.text = tok.text;
      ++*pos;
      if (tokens[*pos].kind == TokenKind::kPlus) {
        ++*pos;
        const Token& offset = tokens[*pos];
        if (offset.kind != TokenKind::kInt) {
          return Unexpected(offset, "integer offset after '+'");
        }
        term.value = offset.int_value;
        ++*pos;
      }
      return term;
    }
    default:
      return Unexpected(tok, "a term (integer, constant, or variable)");
  }
}

Status Parser::NotePredicate(const RawAtom& atom) {
  auto [it, inserted] = pred_states_.try_emplace(atom.pred);
  PredState& state = it->second;
  if (inserted) {
    state.written_arity = static_cast<uint32_t>(atom.args.size());
    state.line = atom.line;
    state.column = atom.column;
    state.unit = atom.unit;
    return Status::Ok();
  }
  if (state.written_arity != atom.args.size()) {
    return InvalidArgumentError(
        "predicate '" + atom.pred + "' used with " +
        std::to_string(atom.args.size()) + " arguments but previously with " +
        std::to_string(state.written_arity) + At(atom.line, atom.column));
  }
  return Status::Ok();
}

Status Parser::InferSorts() {
  var_sorts_.assign(clauses_.size(), {});

  // Set `sort` for variable `name` of clause `ci`; conflict is an error.
  auto set_var = [&](std::size_t ci, const std::string& name, Sort sort,
                     int line, int column) -> Status {
    Sort& slot = var_sorts_[ci][name];
    if (slot == Sort::kUnknown) {
      slot = sort;
      return Status::Ok();
    }
    if (slot != sort) {
      return InvalidArgumentError(
          "variable '" + name + "' is used both as a temporal and as a "
          "non-temporal term" + At(line, column));
    }
    return Status::Ok();
  };

  auto set_pred = [&](const std::string& name, Sort sort, int line,
                      int column) -> Status {
    PredState& state = pred_states_.at(name);
    if (state.sort == Sort::kUnknown) {
      state.sort = sort;
      return Status::Ok();
    }
    if (state.sort != sort) {
      return InvalidArgumentError(
          "predicate '" + name + "' is used both with a temporal and with a "
          "non-temporal first argument" + At(line, column));
    }
    return Status::Ok();
  };

  // Monotone constraint propagation to a fixpoint. Sorts only move from
  // kUnknown to a known sort, so the loop terminates.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t ci = 0; ci < clauses_.size(); ++ci) {
      const RawClause& clause = clauses_[ci];
      std::vector<const RawAtom*> atoms;
      atoms.push_back(&clause.head);
      for (const RawAtom& a : clause.body) atoms.push_back(&a);

      for (const RawAtom* atom : atoms) {
        PredState& pstate = pred_states_.at(atom->pred);
        for (std::size_t j = 0; j < atom->args.size(); ++j) {
          const RawTerm& t = atom->args[j];
          bool first = (j == 0);
          // Syntactically temporal terms.
          bool syntactically_temporal =
              t.kind == RawTerm::Kind::kInt ||
              t.kind == RawTerm::Kind::kInterval ||
              (t.kind == RawTerm::Kind::kVar && t.value > 0);
          if (!first && syntactically_temporal) {
            return InvalidArgumentError(
                "temporal term in non-temporal argument position of '" +
                atom->pred + "'" + At(t.line, t.column));
          }
          if (first && syntactically_temporal &&
              pstate.sort != Sort::kTemporal) {
            CHRONOLOG_RETURN_IF_ERROR(
                set_pred(atom->pred, Sort::kTemporal, t.line, t.column));
            changed = true;
          }

          Sort position_sort;
          if (first && pstate.sort == Sort::kTemporal) {
            position_sort = Sort::kTemporal;
          } else if (pstate.sort == Sort::kUnknown && first) {
            position_sort = Sort::kUnknown;  // undetermined yet
          } else {
            position_sort = Sort::kNonTemporal;
          }

          if (t.kind == RawTerm::Kind::kConst) {
            if (position_sort == Sort::kTemporal) {
              return InvalidArgumentError(
                  "constant '" + t.text +
                  "' in the temporal argument position of '" + atom->pred +
                  "'" + At(t.line, t.column));
            }
            continue;
          }
          if (t.kind == RawTerm::Kind::kInt ||
              t.kind == RawTerm::Kind::kInterval) {
            if (position_sort == Sort::kNonTemporal) {
              return InvalidArgumentError(
                  "integer in non-temporal argument position of '" +
                  atom->pred + "'" + At(t.line, t.column));
            }
            continue;
          }
          // Variable.
          Sort prev = var_sorts_[ci].count(t.text)
                          ? var_sorts_[ci][t.text]
                          : Sort::kUnknown;
          if (position_sort != Sort::kUnknown) {
            CHRONOLOG_RETURN_IF_ERROR(
                set_var(ci, t.text, position_sort, t.line, t.column));
            if (prev == Sort::kUnknown) changed = true;
          } else if (prev != Sort::kUnknown) {
            // Variable sort known; propagate to the predicate (first
            // position, predicate still unknown).
            CHRONOLOG_RETURN_IF_ERROR(
                set_pred(atom->pred, prev, t.line, t.column));
            changed = true;
          }
          if (t.value > 0) {
            CHRONOLOG_RETURN_IF_ERROR(
                set_var(ci, t.text, Sort::kTemporal, t.line, t.column));
            if (prev == Sort::kUnknown) changed = true;
          }
        }
      }
    }
  }

  // Defaults: everything still unknown is non-temporal. Every variable
  // occurrence gets an entry so lowering can rely on lookups succeeding.
  for (auto& [name, state] : pred_states_) {
    if (state.sort == Sort::kUnknown) state.sort = Sort::kNonTemporal;
  }
  for (std::size_t ci = 0; ci < clauses_.size(); ++ci) {
    const RawClause& clause = clauses_[ci];
    auto note_vars = [&](const RawAtom& atom) {
      for (const RawTerm& t : atom.args) {
        if (t.kind == RawTerm::Kind::kVar) {
          var_sorts_[ci].try_emplace(t.text, Sort::kUnknown);
        }
      }
    };
    note_vars(clause.head);
    for (const RawAtom& a : clause.body) note_vars(a);
    for (auto& [name, sort] : var_sorts_[ci]) {
      if (sort == Sort::kUnknown) sort = Sort::kNonTemporal;
    }
  }
  return Status::Ok();
}

Result<ParsedUnit> Parser::Lower() {
  // Declare every predicate with its resolved signature.
  for (const auto& [name, state] : pred_states_) {
    CHRONOLOG_ASSIGN_OR_RETURN(
        PredicateId id, vocab_->DeclarePredicate(name, state.written_arity));
    if (state.sort == Sort::kTemporal) {
      if (state.written_arity == 0) {
        return InvalidArgumentError(
            "temporal predicate '" + name +
            "' needs the temporal argument" +
            Where(state.line, state.column, state.unit));
      }
      if (!vocab_->predicate(id).is_temporal) vocab_->SetTemporal(id);
    } else if (vocab_->predicate(id).is_temporal) {
      return InvalidArgumentError(
          "predicate '" + name +
          "' was declared temporal but is now used as non-temporal" +
          Where(state.line, state.column, state.unit));
    }
  }

  ParsedUnit unit{Program(vocab_), Database(vocab_)};
  unit.program.SetSourceUnits(unit_names_);

  for (std::size_t ci = 0; ci < clauses_.size(); ++ci) {
    const RawClause& clause = clauses_[ci];
    const auto& sorts = var_sorts_[ci];

    // Rule-local variable numbering.
    std::unordered_map<std::string, VarId> var_ids;
    std::vector<std::string> var_names;
    std::vector<bool> temporal_vars;
    auto var_id = [&](const std::string& name) {
      auto it = var_ids.find(name);
      if (it != var_ids.end()) return it->second;
      VarId id = static_cast<VarId>(var_names.size());
      var_ids.emplace(name, id);
      var_names.push_back(name);
      temporal_vars.push_back(sorts.at(name) == Sort::kTemporal);
      return id;
    };

    auto lower_atom = [&](const RawAtom& raw) -> Result<Atom> {
      Atom atom;
      atom.loc = SourceLoc{raw.line, raw.column, raw.unit};
      atom.pred = vocab_->FindPredicate(raw.pred);
      const PredicateInfo& info = vocab_->predicate(atom.pred);
      std::size_t j = 0;
      if (info.is_temporal) {
        const RawTerm& t = raw.args[0];
        if (t.kind == RawTerm::Kind::kInt) {
          atom.time = TemporalTerm::Ground(static_cast<int64_t>(t.value));
        } else {
          assert(t.kind == RawTerm::Kind::kVar);
          atom.time =
              TemporalTerm::Var(var_id(t.text), static_cast<int64_t>(t.value));
        }
        j = 1;
      }
      for (; j < raw.args.size(); ++j) {
        const RawTerm& t = raw.args[j];
        if (t.kind == RawTerm::Kind::kConst) {
          atom.args.push_back(NtTerm::Constant(vocab_->InternConstant(t.text)));
        } else if (t.kind == RawTerm::Kind::kVar) {
          atom.args.push_back(NtTerm::Variable(var_id(t.text)));
        } else {
          return InternalError("integer survived sort checking in '" +
                               raw.pred + "'" + At(t.line, t.column));
        }
      }
      return atom;
    };

    auto has_interval = [](const RawAtom& atom) {
      for (const RawTerm& t : atom.args) {
        if (t.kind == RawTerm::Kind::kInterval) return true;
      }
      return false;
    };

    if (clause.is_rule) {
      if (has_interval(clause.head)) {
        return InvalidArgumentError(
            "interval terms are fact abbreviations and cannot appear in "
            "rules" +
            Where(clause.head.line, clause.head.column, clause.head.unit));
      }
      for (const RawAtom& raw : clause.body) {
        if (has_interval(raw)) {
          return InvalidArgumentError(
              "interval terms are fact abbreviations and cannot appear in "
              "rules" + Where(raw.line, raw.column, raw.unit));
        }
      }
      Rule rule;
      rule.loc = SourceLoc{clause.head.line, clause.head.column,
                           clause.head.unit};
      CHRONOLOG_ASSIGN_OR_RETURN(rule.head, lower_atom(clause.head));
      for (const RawAtom& raw : clause.body) {
        CHRONOLOG_ASSIGN_OR_RETURN(Atom atom, lower_atom(raw));
        rule.body.push_back(std::move(atom));
      }
      rule.var_names = std::move(var_names);
      rule.temporal_vars = std::move(temporal_vars);
      if (!rule.IsRangeRestricted()) {
        std::string unsafe;
        for (VarId v : rule.UnsafeHeadVars()) {
          if (!unsafe.empty()) unsafe += ", ";
          unsafe += "'" + rule.var_names[v] + "'";
        }
        return InvalidArgumentError(
            "rule for '" + clause.head.pred +
            "' is not range-restricted (every head variable must also occur "
            "in the body; unbound: " + unsafe + ")" +
            Where(clause.head.line, clause.head.column, clause.head.unit));
      }
      unit.program.AddRule(std::move(rule));
    } else {
      // A clause without body is a database tuple and must be ground.
      // An interval in the temporal argument abbreviates one tuple per
      // time point (paper, Section 2, footnote 1).
      std::vector<RawAtom> expanded;
      if (has_interval(clause.head)) {
        const RawTerm& span = clause.head.args[0];
        for (uint64_t t = span.value; t <= span.value_hi; ++t) {
          RawAtom copy = clause.head;
          copy.args[0].kind = RawTerm::Kind::kInt;
          copy.args[0].value = t;
          expanded.push_back(std::move(copy));
        }
      } else {
        expanded.push_back(clause.head);
      }
      for (const RawAtom& raw : expanded) {
        CHRONOLOG_ASSIGN_OR_RETURN(Atom atom, lower_atom(raw));
        if (!var_names.empty()) {
          return InvalidArgumentError(
              "database tuple for '" + clause.head.pred +
              "' contains variables" +
              Where(clause.head.line, clause.head.column, clause.head.unit));
        }
        GroundAtom fact;
        fact.pred = atom.pred;
        fact.time = atom.temporal() ? atom.time->offset : 0;
        fact.args.reserve(atom.args.size());
        for (const NtTerm& t : atom.args) fact.args.push_back(t.id);
        unit.database.AddFact(std::move(fact));
      }
    }
  }
  return unit;
}

Result<ParsedUnit> Parser::Finish() {
  if (finished_) {
    return FailedPreconditionError("Parser::Finish called twice");
  }
  finished_ = true;
  CHRONOLOG_RETURN_IF_ERROR(InferSorts());
  return Lower();
}

Result<ParsedUnit> Parser::Parse(std::string_view source,
                                 std::shared_ptr<Vocabulary> vocab) {
  Parser parser(std::move(vocab));
  CHRONOLOG_RETURN_IF_ERROR(parser.AddSource(source));
  return parser.Finish();
}

}  // namespace chronolog
