#ifndef CHRONOLOG_AST_PRINTER_H_
#define CHRONOLOG_AST_PRINTER_H_

#include <string>

#include "ast/program.h"

namespace chronolog {

/// Renders AST nodes back into the surface syntax (useful for diagnostics,
/// round-trip tests and the REPL). All functions need the Vocabulary that
/// owns the interned names; atoms inside rules additionally need the rule for
/// variable names.

std::string TemporalTermToString(const TemporalTerm& term,
                                 const std::vector<std::string>& var_names);

std::string AtomToString(const Atom& atom, const Vocabulary& vocab,
                         const std::vector<std::string>& var_names);

std::string GroundAtomToString(const GroundAtom& atom, const Vocabulary& vocab);

std::string RuleToString(const Rule& rule, const Vocabulary& vocab);

/// One clause per line, rules first and then facts.
std::string ProgramToString(const Program& program);
std::string DatabaseToString(const Database& database);

}  // namespace chronolog

#endif  // CHRONOLOG_AST_PRINTER_H_
