#include "ast/lexer.h"

#include <cctype>

namespace chronolog {

std::string_view TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kVar: return "variable";
    case TokenKind::kInt: return "integer";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kComma: return "','";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kColonDash: return "':-'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kAt: return "'@'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kAmp: return "'&'";
    case TokenKind::kPipe: return "'|'";
    case TokenKind::kTilde: return "'~'";
    case TokenKind::kEq: return "'='";
    case TokenKind::kEof: return "end of input";
  }
  return "unknown";
}

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string Position(int line, int column) {
  return "line " + std::to_string(line) + ", column " + std::to_string(column);
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view source) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  int line = 1;
  int column = 1;

  auto advance = [&](std::size_t n) {
    for (std::size_t k = 0; k < n; ++k) {
      if (i < source.size() && source[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
      ++i;
    }
  };

  while (i < source.size()) {
    char c = source[i];
    // Whitespace.
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    // Comments: % ... or // ... to end of line.
    if (c == '%' || (c == '/' && i + 1 < source.size() && source[i + 1] == '/')) {
      while (i < source.size() && source[i] != '\n') advance(1);
      continue;
    }

    Token tok;
    tok.line = line;
    tok.column = column;

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = i;
      while (i < source.size() &&
             std::isdigit(static_cast<unsigned char>(source[i]))) {
        advance(1);
      }
      std::string_view digits = source.substr(start, i - start);
      uint64_t value = 0;
      for (char d : digits) {
        uint64_t dv = static_cast<uint64_t>(d - '0');
        if (value > (UINT64_MAX - dv) / 10) {
          return InvalidArgumentError("integer literal overflow at " +
                                      Position(tok.line, tok.column));
        }
        value = value * 10 + dv;
      }
      tok.kind = TokenKind::kInt;
      tok.int_value = value;
      tok.text = std::string(digits);
      tokens.push_back(std::move(tok));
      continue;
    }

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < source.size() && IsIdentChar(source[i])) advance(1);
      tok.text = std::string(source.substr(start, i - start));
      bool is_var = (c == '_') || std::isupper(static_cast<unsigned char>(c));
      tok.kind = is_var ? TokenKind::kVar : TokenKind::kIdent;
      tokens.push_back(std::move(tok));
      continue;
    }

    if (c == '\'') {
      // Quoted constant: treated as an identifier token.
      advance(1);
      std::size_t start = i;
      while (i < source.size() && source[i] != '\'' && source[i] != '\n') {
        advance(1);
      }
      if (i >= source.size() || source[i] != '\'') {
        return InvalidArgumentError("unterminated quoted constant at " +
                                    Position(tok.line, tok.column));
      }
      tok.kind = TokenKind::kIdent;
      tok.text = std::string(source.substr(start, i - start));
      advance(1);  // closing quote
      tokens.push_back(std::move(tok));
      continue;
    }

    switch (c) {
      case '(': tok.kind = TokenKind::kLParen; advance(1); break;
      case ')': tok.kind = TokenKind::kRParen; advance(1); break;
      case ',': tok.kind = TokenKind::kComma; advance(1); break;
      case '.': tok.kind = TokenKind::kDot; advance(1); break;
      case '+': tok.kind = TokenKind::kPlus; advance(1); break;
      case '@': tok.kind = TokenKind::kAt; advance(1); break;
      case '/': tok.kind = TokenKind::kSlash; advance(1); break;
      case '&': tok.kind = TokenKind::kAmp; advance(1); break;
      case '|': tok.kind = TokenKind::kPipe; advance(1); break;
      case '~': tok.kind = TokenKind::kTilde; advance(1); break;
      case '=': tok.kind = TokenKind::kEq; advance(1); break;
      case ':':
        if (i + 1 < source.size() && source[i + 1] == '-') {
          tok.kind = TokenKind::kColonDash;
          advance(2);
        } else {
          return InvalidArgumentError("expected ':-' at " +
                                      Position(tok.line, tok.column));
        }
        break;
      default:
        return InvalidArgumentError(std::string("unexpected character '") + c +
                                    "' at " + Position(tok.line, tok.column));
    }
    tokens.push_back(std::move(tok));
  }

  Token eof;
  eof.kind = TokenKind::kEof;
  eof.line = line;
  eof.column = column;
  tokens.push_back(std::move(eof));
  return tokens;
}

}  // namespace chronolog
