#ifndef CHRONOLOG_AST_SOURCE_LOCATION_H_
#define CHRONOLOG_AST_SOURCE_LOCATION_H_

#include <cstdint>
#include <string>

namespace chronolog {

/// Position of an AST node in the surface syntax it was parsed from.
/// Synthesised nodes (normalisation, temporalisation, workload generators)
/// keep the default-constructed invalid location; diagnostics fall back to
/// rule indexes for those.
struct SourceLoc {
  int32_t line = 0;    // 1-based; 0 means "no source position"
  int32_t column = 0;  // 1-based
  int32_t unit = -1;   // index into Program::source_units(); -1 = unknown

  bool valid() const { return line > 0; }

  /// "line:column" ("?" when invalid). Unit resolution needs the owning
  /// Program and lives in analysis/diagnostics.h.
  std::string ToString() const {
    if (!valid()) return "?";
    return std::to_string(line) + ":" + std::to_string(column);
  }

  friend bool operator==(const SourceLoc& a, const SourceLoc& b) {
    return a.line == b.line && a.column == b.column && a.unit == b.unit;
  }
};

}  // namespace chronolog

#endif  // CHRONOLOG_AST_SOURCE_LOCATION_H_
