#include "ast/rule.h"

#include <algorithm>
#include <iterator>

namespace chronolog {

namespace {

void CollectAtomVars(const Atom& atom, std::vector<VarId>* out) {
  if (atom.temporal() && !atom.time->ground()) {
    out->push_back(atom.time->var);
  }
  for (const NtTerm& t : atom.args) {
    if (t.is_variable()) out->push_back(t.id);
  }
}

void SortUnique(std::vector<VarId>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

}  // namespace

bool Rule::IsRangeRestricted() const {
  std::vector<VarId> head_vars = HeadVars();
  std::vector<VarId> body_vars = BodyVars();
  return std::includes(body_vars.begin(), body_vars.end(), head_vars.begin(),
                       head_vars.end());
}

std::vector<VarId> Rule::HeadVars() const {
  std::vector<VarId> out;
  CollectAtomVars(head, &out);
  SortUnique(&out);
  return out;
}

std::vector<VarId> Rule::BodyVars() const {
  std::vector<VarId> out;
  for (const Atom& a : body) CollectAtomVars(a, &out);
  SortUnique(&out);
  return out;
}

std::vector<VarId> Rule::UnsafeHeadVars() const {
  std::vector<VarId> head_vars = HeadVars();
  std::vector<VarId> body_vars = BodyVars();
  std::vector<VarId> out;
  std::set_difference(head_vars.begin(), head_vars.end(), body_vars.begin(),
                      body_vars.end(), std::back_inserter(out));
  return out;
}

}  // namespace chronolog
