#include "ast/printer.h"

namespace chronolog {

std::string TemporalTermToString(const TemporalTerm& term,
                                 const std::vector<std::string>& var_names) {
  if (term.ground()) return std::to_string(term.offset);
  std::string out = var_names[term.var];
  if (term.offset > 0) {
    out += "+";
    out += std::to_string(term.offset);
  }
  return out;
}

std::string AtomToString(const Atom& atom, const Vocabulary& vocab,
                         const std::vector<std::string>& var_names) {
  const PredicateInfo& info = vocab.predicate(atom.pred);
  std::string out = info.name;
  if (info.written_arity() == 0) return out;
  out += "(";
  bool first = true;
  if (atom.temporal()) {
    out += TemporalTermToString(*atom.time, var_names);
    first = false;
  }
  for (const NtTerm& t : atom.args) {
    if (!first) out += ", ";
    first = false;
    if (t.is_constant()) {
      out += vocab.ConstantName(t.id);
    } else {
      out += var_names[t.id];
    }
  }
  out += ")";
  return out;
}

std::string GroundAtomToString(const GroundAtom& atom,
                               const Vocabulary& vocab) {
  const PredicateInfo& info = vocab.predicate(atom.pred);
  std::string out = info.name;
  if (info.written_arity() == 0) return out;
  out += "(";
  bool first = true;
  if (info.is_temporal) {
    out += std::to_string(atom.time);
    first = false;
  }
  for (SymbolId c : atom.args) {
    if (!first) out += ", ";
    first = false;
    out += vocab.ConstantName(c);
  }
  out += ")";
  return out;
}

std::string RuleToString(const Rule& rule, const Vocabulary& vocab) {
  std::string out = AtomToString(rule.head, vocab, rule.var_names);
  if (!rule.body.empty()) {
    out += " :- ";
    for (std::size_t i = 0; i < rule.body.size(); ++i) {
      if (i > 0) out += ", ";
      out += AtomToString(rule.body[i], vocab, rule.var_names);
    }
  }
  out += ".";
  return out;
}

std::string ProgramToString(const Program& program) {
  std::string out;
  for (const Rule& r : program.rules()) {
    out += RuleToString(r, program.vocab());
    out += "\n";
  }
  return out;
}

std::string DatabaseToString(const Database& database) {
  std::string out;
  for (const GroundAtom& f : database.facts()) {
    out += GroundAtomToString(f, database.vocab());
    out += ".\n";
  }
  return out;
}

}  // namespace chronolog
