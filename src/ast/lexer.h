#ifndef CHRONOLOG_AST_LEXER_H_
#define CHRONOLOG_AST_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace chronolog {

/// Token kinds of the chronolog surface syntax (rules, facts, directives and
/// first-order queries share one lexer).
enum class TokenKind {
  kIdent,      // lowercase-led identifier or quoted constant: foo, 'Hunter'
  kVar,        // uppercase- or underscore-led identifier: T, X, _foo
  kInt,        // non-negative decimal integer (a ground temporal term)
  kLParen,     // (
  kRParen,     // )
  kComma,      // ,
  kDot,        // .
  kColonDash,  // :-
  kPlus,       // +
  kAt,         // @  (directive lead-in)
  kSlash,      // /  (arity separator in directives)
  kAmp,        // &  (query conjunction)
  kPipe,       // |  (query disjunction)
  kTilde,      // ~  (query negation)
  kEq,         // =  (query equality; model-only, see paper Section 8)
  kEof,
};

std::string_view TokenKindToString(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;       // identifier / variable spelling
  uint64_t int_value = 0; // for kInt
  int line = 0;
  int column = 0;
};

/// Converts `source` into a token stream. Comments run from `%` or `//` to
/// end of line. Fails with kInvalidArgument on unknown characters, unmatched
/// quotes, or integer overflow.
Result<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace chronolog

#endif  // CHRONOLOG_AST_LEXER_H_
