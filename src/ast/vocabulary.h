#ifndef CHRONOLOG_AST_VOCABULARY_H_
#define CHRONOLOG_AST_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/result.h"
#include "util/symbol_table.h"

namespace chronolog {

/// Dense identifier of a predicate symbol within one Vocabulary.
using PredicateId = uint32_t;

inline constexpr PredicateId kInvalidPredicate = static_cast<PredicateId>(-1);

/// Metadata of one predicate symbol. Following the paper (Section 3.1), a
/// predicate is either temporal — its first (distinguished) argument ranges
/// over temporal terms and the remaining `arity` arguments over constants —
/// or non-temporal with `arity` constant arguments.
struct PredicateInfo {
  std::string name;
  uint32_t arity = 0;        // number of NON-temporal arguments
  bool is_temporal = false;  // whether the distinguished argument is present

  /// Total number of written argument positions (`arity + 1` if temporal).
  uint32_t written_arity() const { return arity + (is_temporal ? 1u : 0u); }
};

/// Shared name space of a temporal deductive database: interned constants and
/// the predicate signature table. A Program, Database and queries over them
/// all reference one Vocabulary.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Interns a database constant.
  SymbolId InternConstant(std::string_view name) {
    return constants_.Intern(name);
  }
  SymbolId FindConstant(std::string_view name) const {
    return constants_.Find(name);
  }
  const std::string& ConstantName(SymbolId id) const {
    return constants_.Name(id);
  }
  std::size_t num_constants() const { return constants_.size(); }

  /// Declares (or retrieves) a predicate. `written_arity` counts every
  /// argument position as written in the source, including a prospective
  /// temporal one; temporality is resolved later by sort inference (see
  /// parser.h) or an explicit declaration. Redeclaration with a different
  /// written arity is an error.
  Result<PredicateId> DeclarePredicate(std::string_view name,
                                       uint32_t written_arity);

  /// Marks `pred` as temporal, shifting one written argument into the
  /// distinguished temporal position. Idempotent.
  void SetTemporal(PredicateId pred);

  PredicateId FindPredicate(std::string_view name) const;
  const PredicateInfo& predicate(PredicateId id) const { return preds_[id]; }
  std::size_t num_predicates() const { return preds_.size(); }

  /// All predicate ids, in declaration order.
  std::vector<PredicateId> AllPredicates() const;

 private:
  SymbolTable constants_;
  std::vector<PredicateInfo> preds_;
  std::unordered_map<std::string, PredicateId> pred_ids_;
};

}  // namespace chronolog

#endif  // CHRONOLOG_AST_VOCABULARY_H_
