#ifndef CHRONOLOG_AST_PARSER_H_
#define CHRONOLOG_AST_PARSER_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ast/lexer.h"
#include "ast/program.h"
#include "util/result.h"

namespace chronolog {

/// Result of parsing one or more source units: the rules (`Z`) and the
/// temporal database (`D`) over a shared vocabulary.
struct ParsedUnit {
  Program program;
  Database database;
};

/// Parser for the chronolog surface syntax.
///
/// ```
/// % The ski-resort scenario of the paper, Section 2.
/// @temporal plane/2.                      % optional explicit declaration
/// plane(T+7, X) :- plane(T, X), resort(X), offseason(T).
/// plane(0, hunter).
/// resort(hunter).
/// offseason(80).
/// ```
///
/// Sorts (temporal vs non-temporal, Section 3.1) are *inferred*: an integer
/// literal or a `V+k` term is temporal and forces its predicate's first
/// argument position to be the distinguished temporal argument; sort
/// information propagates through shared variables until a fixpoint.
/// Ambiguous predicates default to non-temporal; `@temporal name/arity.`
/// pins the sort explicitly (recommended for predicates that only ever see a
/// bare variable in temporal position).
///
/// The parser accumulates clauses across `AddSource` calls and resolves sorts
/// once in `Finish`, so declarations and uses may arrive in any order.
class Parser {
 public:
  /// `vocab` may carry predicates from previously finished units; their
  /// signatures are binding for the new sources. Pass a fresh Vocabulary
  /// (or nullptr) to start from scratch.
  explicit Parser(std::shared_ptr<Vocabulary> vocab = nullptr);

  /// Tokenizes and syntactically parses `source`, buffering its clauses.
  /// `unit_name` (a file name, typically) is recorded in the lowered
  /// program's source-unit table and referenced by every `SourceLoc` of
  /// this unit, so diagnostics can render file:line:column spans.
  Status AddSource(std::string_view source,
                   std::string unit_name = "<input>");

  /// Runs sort inference over everything buffered, lowers to the typed AST
  /// and returns the rules and database. The parser may not be reused
  /// afterwards.
  Result<ParsedUnit> Finish();

  /// One-shot convenience: parse a complete source text.
  static Result<ParsedUnit> Parse(std::string_view source,
                                  std::shared_ptr<Vocabulary> vocab = nullptr);

 private:
  struct RawTerm {
    enum class Kind { kInt, kConst, kVar, kInterval };
    Kind kind = Kind::kConst;
    std::string text;    // constant / variable spelling
    uint64_t value = 0;  // integer value, or offset of `Var+offset`
    uint64_t value_hi = 0;  // upper bound of `lo .. hi` interval facts
    int line = 0;
    int column = 0;
  };
  struct RawAtom {
    std::string pred;
    std::vector<RawTerm> args;
    int line = 0;
    int column = 0;
    int32_t unit = -1;  // index into unit_names_
  };
  struct RawClause {
    RawAtom head;
    std::vector<RawAtom> body;
    bool is_rule = false;  // written with ':-'
  };

  enum class Sort { kUnknown, kNonTemporal, kTemporal };

  struct PredState {
    uint32_t written_arity = 0;
    Sort sort = Sort::kUnknown;
    bool pinned = false;  // set by directive or pre-existing vocabulary
    int line = 0;
    int column = 0;
    int32_t unit = -1;  // unit of the first occurrence / declaration
  };

  // --- syntactic phase ---
  Status ParseUnitTokens(const std::vector<Token>& tokens);
  Status ParseDirective(const std::vector<Token>& tokens, std::size_t* pos);
  Result<RawAtom> ParseRawAtom(const std::vector<Token>& tokens,
                               std::size_t* pos);
  Result<RawTerm> ParseRawTerm(const std::vector<Token>& tokens,
                               std::size_t* pos);

  // --- sort inference ---
  Status InferSorts();
  Status NotePredicate(const RawAtom& atom);

  // --- lowering ---
  Result<ParsedUnit> Lower();

  /// " at line L, column C[ of unit]" for Finish-time errors, which have
  /// lost the AddSource context.
  std::string Where(int line, int column, int32_t unit) const;

  std::shared_ptr<Vocabulary> vocab_;
  std::vector<std::string> unit_names_;
  std::vector<RawClause> clauses_;
  std::unordered_map<std::string, PredState> pred_states_;
  // Inferred variable sorts, keyed by (clause index, variable name).
  std::vector<std::unordered_map<std::string, Sort>> var_sorts_;
  bool finished_ = false;
};

}  // namespace chronolog

#endif  // CHRONOLOG_AST_PARSER_H_
