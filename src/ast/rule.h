#ifndef CHRONOLOG_AST_RULE_H_
#define CHRONOLOG_AST_RULE_H_

#include <string>
#include <vector>

#include "ast/atom.h"

namespace chronolog {

/// A temporal Horn rule `head :- body_1, ..., body_k.` (Section 3.1).
/// Variables are rule-local: `var_names[v]` is the source name of VarId `v`.
/// `temporal_vars[v]` records the sort assigned by inference.
struct Rule {
  Atom head;
  std::vector<Atom> body;
  std::vector<std::string> var_names;
  std::vector<bool> temporal_vars;
  /// Position of the rule (its head atom) in the source it was parsed
  /// from; invalid for synthesised rules.
  SourceLoc loc;

  std::size_t num_vars() const { return var_names.size(); }

  /// Maximum depth of any non-ground temporal term in the rule — the paper's
  /// `g` for a single rule. 0 when the rule mentions no temporal terms.
  int64_t MaxTemporalDepth() const {
    int64_t g = 0;
    auto consider = [&g](const Atom& a) {
      if (a.temporal() && !a.time->ground() && a.time->depth() > g) {
        g = a.time->depth();
      }
    };
    consider(head);
    for (const Atom& a : body) consider(a);
    return g;
  }

  /// True when the rule contains at most one temporal variable and, if the
  /// variable occurs, it occurs as the temporal argument of some literal —
  /// the paper's *semi-normal* form. Counts variables that actually occur
  /// (the variable-name table may retain entries no longer referenced after
  /// a transformation).
  bool IsSemiNormal() const {
    VarId seen = kNoVar;
    int count = 0;
    auto consider = [&](const Atom& a) {
      if (a.temporal() && !a.time->ground() && a.time->var != seen) {
        seen = a.time->var;
        ++count;
      }
    };
    consider(head);
    for (const Atom& a : body) consider(a);
    return count <= 1;
  }

  /// True when the rule is semi-normal and every non-ground temporal term has
  /// depth at most 1 — the paper's *normal* form.
  bool IsNormal() const { return IsSemiNormal() && MaxTemporalDepth() <= 1; }

  /// True when every variable of the head also appears in the body — the
  /// *range-restricted* requirement of Section 3.3 that makes relational
  /// specifications well-defined.
  bool IsRangeRestricted() const;

  /// VarIds (with multiplicity removed) occurring in the head / in the body.
  std::vector<VarId> HeadVars() const;
  std::vector<VarId> BodyVars() const;

  /// Head variables with no body occurrence — the witnesses of a
  /// range-restriction violation (empty iff IsRangeRestricted()).
  std::vector<VarId> UnsafeHeadVars() const;
};

}  // namespace chronolog

#endif  // CHRONOLOG_AST_RULE_H_
