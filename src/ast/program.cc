#include "ast/program.h"

#include <algorithm>

namespace chronolog {

const std::string& Program::SourceUnitName(int32_t unit) const {
  static const std::string kUnknown = "<input>";
  if (unit < 0 || static_cast<std::size_t>(unit) >= source_units_.size()) {
    return kUnknown;
  }
  return source_units_[unit];
}

std::vector<PredicateId> Program::DerivedPredicates() const {
  std::vector<PredicateId> out;
  for (const Rule& r : rules_) out.push_back(r.head.pred);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace chronolog
