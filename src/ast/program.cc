#include "ast/program.h"

#include <algorithm>

namespace chronolog {

std::vector<PredicateId> Program::DerivedPredicates() const {
  std::vector<PredicateId> out;
  for (const Rule& r : rules_) out.push_back(r.head.pred);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace chronolog
