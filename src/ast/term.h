#ifndef CHRONOLOG_AST_TERM_H_
#define CHRONOLOG_AST_TERM_H_

#include <cstdint>
#include <functional>
#include <limits>

#include "util/symbol_table.h"

namespace chronolog {

/// Rule-local variable identifier (index into the owning rule's variable
/// name table).
using VarId = uint32_t;

inline constexpr VarId kNoVar = static_cast<VarId>(-1);

/// A non-temporal term of the paper's language (Section 3.1): either a
/// standard database constant or a non-temporal variable. Ground non-temporal
/// terms are exactly the constants.
struct NtTerm {
  enum class Kind : uint8_t { kConstant, kVariable };

  Kind kind = Kind::kConstant;
  /// SymbolId of the constant, or rule-local VarId of the variable.
  uint32_t id = 0;

  static NtTerm Constant(SymbolId c) {
    return NtTerm{Kind::kConstant, c};
  }
  static NtTerm Variable(VarId v) { return NtTerm{Kind::kVariable, v}; }

  bool is_constant() const { return kind == Kind::kConstant; }
  bool is_variable() const { return kind == Kind::kVariable; }

  friend bool operator==(const NtTerm& a, const NtTerm& b) {
    return a.kind == b.kind && a.id == b.id;
  }
};

/// A temporal term (Section 3.1): terms are built from the single temporal
/// constant `0` and the postfix unary function `+1`.
///
/// A ground temporal term `(...((0+1)+1)...+1)` with k applications is
/// represented by its depth `k` (the paper's own abbreviation `k`); a
/// non-ground temporal term contains exactly one temporal variable `v` and is
/// represented as `v + offset`.
struct TemporalTerm {
  VarId var = kNoVar;   // kNoVar means ground
  int64_t offset = 0;   // depth of the term over `0` or over the variable

  static TemporalTerm Ground(int64_t k) { return TemporalTerm{kNoVar, k}; }
  static TemporalTerm Var(VarId v, int64_t offset = 0) {
    return TemporalTerm{v, offset};
  }

  bool ground() const { return var == kNoVar; }

  /// Depth of the term: `k` for ground `k`, `offset` for `v + offset`.
  int64_t depth() const { return offset; }

  friend bool operator==(const TemporalTerm& a, const TemporalTerm& b) {
    return a.var == b.var && a.offset == b.offset;
  }
};

}  // namespace chronolog

#endif  // CHRONOLOG_AST_TERM_H_
