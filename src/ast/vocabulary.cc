#include "ast/vocabulary.h"

#include <cassert>

namespace chronolog {

Result<PredicateId> Vocabulary::DeclarePredicate(std::string_view name,
                                                 uint32_t written_arity) {
  auto it = pred_ids_.find(std::string(name));
  if (it != pred_ids_.end()) {
    const PredicateInfo& info = preds_[it->second];
    if (info.written_arity() != written_arity) {
      return InvalidArgumentError(
          "predicate '" + std::string(name) + "' used with arity " +
          std::to_string(written_arity) + " but previously declared with arity " +
          std::to_string(info.written_arity()));
    }
    return it->second;
  }
  PredicateId id = static_cast<PredicateId>(preds_.size());
  PredicateInfo info;
  info.name = std::string(name);
  info.arity = written_arity;  // all written args non-temporal until inference
  info.is_temporal = false;
  preds_.push_back(std::move(info));
  pred_ids_.emplace(std::string(name), id);
  return id;
}

void Vocabulary::SetTemporal(PredicateId pred) {
  assert(pred < preds_.size());
  PredicateInfo& info = preds_[pred];
  if (info.is_temporal) return;
  assert(info.arity >= 1 && "temporal predicate needs a distinguished argument");
  info.is_temporal = true;
  info.arity -= 1;
}

PredicateId Vocabulary::FindPredicate(std::string_view name) const {
  auto it = pred_ids_.find(std::string(name));
  if (it == pred_ids_.end()) return kInvalidPredicate;
  return it->second;
}

std::vector<PredicateId> Vocabulary::AllPredicates() const {
  std::vector<PredicateId> out(preds_.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<PredicateId>(i);
  }
  return out;
}

}  // namespace chronolog
