#ifndef CHRONOLOG_AST_PROGRAM_H_
#define CHRONOLOG_AST_PROGRAM_H_

#include <memory>
#include <vector>

#include "ast/atom.h"
#include "ast/rule.h"
#include "ast/vocabulary.h"

namespace chronolog {

/// A finite set of temporal rules — the `Z` of the paper's `Z ∧ D`.
class Program {
 public:
  explicit Program(std::shared_ptr<Vocabulary> vocab)
      : vocab_(std::move(vocab)) {}

  void AddRule(Rule rule) { rules_.push_back(std::move(rule)); }

  const std::vector<Rule>& rules() const { return rules_; }
  std::vector<Rule>& mutable_rules() { return rules_; }

  const Vocabulary& vocab() const { return *vocab_; }
  const std::shared_ptr<Vocabulary>& vocab_ptr() const { return vocab_; }

  /// Maximum depth `g` of a non-ground temporal term across all rules
  /// (1 for normal programs; the look-back horizon of semi-normal programs).
  int64_t MaxTemporalDepth() const {
    int64_t g = 0;
    for (const Rule& r : rules_) g = std::max(g, r.MaxTemporalDepth());
    return g;
  }

  bool IsSemiNormal() const {
    for (const Rule& r : rules_) {
      if (!r.IsSemiNormal()) return false;
    }
    return true;
  }

  bool IsNormal() const {
    for (const Rule& r : rules_) {
      if (!r.IsNormal()) return false;
    }
    return true;
  }

  bool IsRangeRestricted() const {
    for (const Rule& r : rules_) {
      if (!r.IsRangeRestricted()) return false;
    }
    return true;
  }

  /// Predicates appearing in the head of some rule — the paper's *derived*
  /// predicates (Section 5).
  std::vector<PredicateId> DerivedPredicates() const;

  /// Names of the source units the rules were parsed from, indexed by
  /// `SourceLoc::unit`. Empty for programmatically built programs.
  const std::vector<std::string>& source_units() const {
    return source_units_;
  }
  void SetSourceUnits(std::vector<std::string> units) {
    source_units_ = std::move(units);
  }
  /// Resolves `SourceLoc::unit` to a display name; "<input>" when the unit
  /// is unknown or out of range.
  const std::string& SourceUnitName(int32_t unit) const;

 private:
  std::vector<Rule> rules_;
  std::shared_ptr<Vocabulary> vocab_;
  std::vector<std::string> source_units_;
};

/// A finite temporal database — the `D` of `Z ∧ D`: ground temporal and
/// non-temporal tuples.
class Database {
 public:
  explicit Database(std::shared_ptr<Vocabulary> vocab)
      : vocab_(std::move(vocab)) {}

  void AddFact(GroundAtom fact) { facts_.push_back(std::move(fact)); }

  const std::vector<GroundAtom>& facts() const { return facts_; }

  const Vocabulary& vocab() const { return *vocab_; }
  const std::shared_ptr<Vocabulary>& vocab_ptr() const { return vocab_; }

  std::size_t size() const { return facts_.size(); }

  /// The paper's `c`: maximum depth of a temporal term in the database
  /// (0 for an empty or purely non-temporal database).
  int64_t MaxTemporalDepth() const {
    int64_t c = 0;
    for (const GroundAtom& f : facts_) {
      if (vocab_->predicate(f.pred).is_temporal && f.time > c) c = f.time;
    }
    return c;
  }

  /// The paper's database-size measure `max(n, c)` (temporal terms counted
  /// in unary).
  int64_t SizeMeasure() const {
    return std::max<int64_t>(static_cast<int64_t>(facts_.size()),
                             MaxTemporalDepth());
  }

 private:
  std::vector<GroundAtom> facts_;
  std::shared_ptr<Vocabulary> vocab_;
};

}  // namespace chronolog

#endif  // CHRONOLOG_AST_PROGRAM_H_
