#ifndef CHRONOLOG_AST_ATOM_H_
#define CHRONOLOG_AST_ATOM_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "ast/source_location.h"
#include "ast/term.h"
#include "ast/vocabulary.h"
#include "util/hash.h"

namespace chronolog {

/// A (possibly non-ground) atom of the rule language. For a temporal
/// predicate `P`, `P(v, x1, ..., xn)` stores the temporal argument `v` in
/// `time` and the non-temporal arguments in `args`; for a non-temporal
/// predicate `time` is absent.
struct Atom {
  PredicateId pred = kInvalidPredicate;
  std::optional<TemporalTerm> time;
  std::vector<NtTerm> args;
  /// Where the atom was written; invalid for synthesised atoms. Not part of
  /// structural equality.
  SourceLoc loc;

  bool temporal() const { return time.has_value(); }

  /// Depth of the temporal term; 0 for non-temporal atoms.
  int64_t temporal_depth() const { return temporal() ? time->depth() : 0; }

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.pred == b.pred && a.time == b.time && a.args == b.args;
  }
};

/// A fully ground atom — a database tuple (Section 3.1) or an element of a
/// Herbrand interpretation. `time` is meaningful only for temporal
/// predicates (callers must consult the Vocabulary); it is kept at 0 for
/// non-temporal atoms so equality/hashing stay uniform.
struct GroundAtom {
  PredicateId pred = kInvalidPredicate;
  int64_t time = 0;
  std::vector<SymbolId> args;

  GroundAtom() = default;
  GroundAtom(PredicateId p, int64_t t, std::vector<SymbolId> a)
      : pred(p), time(t), args(std::move(a)) {}

  friend bool operator==(const GroundAtom& a, const GroundAtom& b) {
    return a.pred == b.pred && a.time == b.time && a.args == b.args;
  }
};

struct GroundAtomHash {
  std::size_t operator()(const GroundAtom& g) const {
    std::size_t seed = static_cast<std::size_t>(g.pred);
    HashCombine(seed, static_cast<std::size_t>(g.time));
    return HashRange(g.args.data(), g.args.size(), seed);
  }
};

}  // namespace chronolog

#endif  // CHRONOLOG_AST_ATOM_H_
