#ifndef CHRONOLOG_CORE_ENGINE_H_
#define CHRONOLOG_CORE_ENGINE_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "analysis/classify.h"
#include "analysis/dataflow.h"
#include "analysis/inflationary.h"
#include "analysis/lint.h"
#include "ast/parser.h"
#include "ast/program.h"
#include "eval/bt.h"
#include "query/query_eval.h"
#include "query/query_parser.h"
#include "spec/specification.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/result.h"
#include "util/trace.h"

namespace chronolog {

/// Engine-level options.
struct EngineOptions {
  /// Budgets for period detection / specification construction.
  PeriodDetectionOptions period;
  /// Budgets for the Theorem 5.2 inflationary decision procedure.
  PeriodDetectionOptions inflationary_check;
  /// Worker threads for model materialisation (specification builds and
  /// AskBt). Values > 1 are pushed into the sub-option structs above unless
  /// those already request their own thread count. Results are
  /// thread-count independent.
  int num_threads = 1;
  /// When to run chronolog_lint over the program before evaluation.
  ///  - kOff    (default): no lint pass, behaviour identical to before.
  ///  - kWarn:   lint at construction; diagnostics are retained and
  ///             queryable via TemporalDatabase::lint(), never fatal.
  ///  - kReject: like kWarn, but FromSource / FromParsedUnit fail with
  ///             kInvalidArgument when any error-severity diagnostic
  ///             (L001/L002-class) is present. Warnings never reject.
  enum class LintLevel { kOff, kWarn, kReject };
  LintLevel lint_level = LintLevel::kOff;
  /// Pass configuration used when `lint_level != kOff`.
  LintOptions lint;
  /// Run the chronolog_flow static analyses (analysis/dataflow.h) and let
  /// their results steer evaluation: the temporal-offset hints seed
  /// `period.initial_horizon` (result-invariant — the doubling detector
  /// converges to the model's minimal period from any starting window) and
  /// the adornment join-order priors seed the RuleEvaluator plan caches
  /// (plans never affect results). Off by default; the analysis is also
  /// available on demand via TemporalDatabase::analysis().
  bool analyze = false;
  /// Pass configuration for the flow analyses (roots, degree budget).
  FlowOptions flow;
  /// Build the chronolog_obs observability layer for this database: the
  /// engine owns a MetricsRegistry + TraceBuffer and wires them through
  /// every evaluator it drives (specification builds, inflationary checks,
  /// AskBt, Explain). Off by default — the instrumentation then costs one
  /// null-pointer branch per site (benchmarked < 2% on the spec-build
  /// suite, see DESIGN.md).
  bool collect_metrics = false;
  /// Capacity of the engine-owned TraceBuffer (spans beyond it are counted
  /// as dropped, not stored). Only meaningful with `collect_metrics`;
  /// chronolog-serve exposes it as `--trace-capacity=N`.
  std::size_t trace_capacity = 1 << 16;
  /// Threshold for this engine's structured log events (src/util/log.h,
  /// JSON lines: lint summaries, specification-build outcomes). Unset
  /// inherits the process-wide level — $CHRONOLOG_LOG_LEVEL, default warn —
  /// so engines stay quiet in tests and noisy only when asked.
  std::optional<LogLevel> log_level;
};

/// The top-level facade of chronolog: one temporal deductive database
/// `Z ∧ D` with classification, relational-specification construction and
/// query answering. Typical use:
///
///   auto tdd = TemporalDatabase::FromSource(R"(
///     even(0).
///     even(T+2) :- even(T).
///   )");
///   tdd->Ask("even(1000000)");            // yes, O(1) after spec build
///   tdd->Query("exists T (even(T+1))");   // first-order queries
///
/// All heavyweight artefacts (classification, inflationary verdict,
/// relational specification) are built lazily and cached.
class TemporalDatabase {
 public:
  /// Parses `source` (rules + facts + directives) and wraps it.
  static Result<TemporalDatabase> FromSource(std::string_view source,
                                             EngineOptions options = {});

  /// Wraps an already-parsed unit (e.g. from a workload generator or a
  /// transformation such as TemporalizeDatalog).
  static Result<TemporalDatabase> FromParsedUnit(ParsedUnit unit,
                                                 EngineOptions options = {});

  TemporalDatabase(TemporalDatabase&&) = default;
  TemporalDatabase& operator=(TemporalDatabase&&) = default;

  const Program& program() const { return unit_.program; }
  const Database& database() const { return unit_.database; }
  const Vocabulary& vocab() const { return unit_.program.vocab(); }

  /// Diagnostics from the construction-time lint run; empty when
  /// `EngineOptions::lint_level == kOff` (lint never ran) or the program is
  /// clean.
  const LintResult& lint() const { return lint_; }

  /// Syntactic classification (computed once, cached).
  const ProgramClassification& classification();

  /// Theorem 5.2 inflationary verdict (computed once, cached).
  Result<InflationaryReport> inflationary();

  /// The chronolog_flow static analysis (computed once, cached). Available
  /// regardless of `EngineOptions::analyze`; the flag only controls whether
  /// the hints steer specification builds.
  const FlowAnalysis& analysis();

  /// The relational specification `(T, B, W)` of the least model (built
  /// once, cached). May fail with kResourceExhausted when the period
  /// exceeds the configured horizon.
  Result<const RelationalSpecification*> specification();

  /// Build-time facts about the cached specification — detection stats and
  /// the join plans its fixpoints executed (EXPLAIN's plan source). Only
  /// meaningful after a successful specification() call; empty before.
  const SpecificationBuildInfo& spec_info() const { return spec_info_; }

  /// Yes-no query for a ground atom, answered through the relational
  /// specification: O(parse + rewrite + lookup) per call after the first.
  Result<bool> Ask(std::string_view ground_atom);

  /// Yes-no query answered by algorithm BT (Figure 1) from scratch; `range`
  /// defaults to `b + c + p` obtained from the specification. Mostly useful
  /// for benchmarking BT itself — `Ask` is the fast path.
  Result<bool> AskBt(std::string_view ground_atom,
                     std::optional<int64_t> range = std::nullopt);

  /// First-order temporal query (Proposition 3.1 evaluation over the
  /// specification). `limits` bounds the evaluation per query: a wall-clock
  /// timeout (answer carries `QueryAnswer::partial` when it fires) and a
  /// row cap (`QueryAnswer::truncated`); the default is unlimited.
  Result<QueryAnswer> Query(std::string_view query, QueryLimits limits = {});

  /// Renders a ground hyperresolution proof of `ground_atom` (the
  /// derivation object behind Theorem 4.1's correctness argument). Atoms
  /// beyond the representative segment are first rewritten to their
  /// canonical form; the returned text notes the rewrite. Re-materialises
  /// the model with provenance — O(model) per call, meant for debugging
  /// and auditing rather than hot paths.
  Result<std::string> Explain(std::string_view ground_atom);

  /// Multi-line human-readable summary: classification, period,
  /// specification sizes.
  std::string Describe();

  /// The engine-owned observability sinks; null unless
  /// `EngineOptions::collect_metrics` was set.
  MetricsRegistry* metrics() const { return metrics_.get(); }
  TraceBuffer* trace() const { return trace_.get(); }

  /// Combined JSON export `{"metrics":{...},"trace":{...}}` of everything
  /// collected so far; "{}" when collection is off.
  std::string MetricsJson() const;

 private:
  /// Runs the construction-time lint pass mandated by
  /// `EngineOptions::lint_level` (no-op for kOff); rejects with
  /// kInvalidArgument on error diagnostics under kReject.
  static Result<TemporalDatabase> ApplyLintLevel(TemporalDatabase tdd);

  TemporalDatabase(ParsedUnit unit, EngineOptions options)
      : unit_(std::move(unit)), options_(options) {
    if (options_.num_threads > 1) {
      if (options_.period.num_threads <= 1) {
        options_.period.num_threads = options_.num_threads;
      }
      if (options_.inflationary_check.num_threads <= 1) {
        options_.inflationary_check.num_threads = options_.num_threads;
      }
    }
    if (options_.collect_metrics) {
      // The sinks outlive every evaluator run (they are owned here and the
      // raw pointers stored in the option structs stay valid across moves
      // of this object — unique_ptr moves transfer the pointee untouched).
      metrics_ = std::make_unique<MetricsRegistry>();
      trace_ = std::make_unique<TraceBuffer>(options_.trace_capacity);
      options_.period.metrics = metrics_.get();
      options_.period.trace = trace_.get();
      options_.inflationary_check.metrics = metrics_.get();
      options_.inflationary_check.trace = trace_.get();
    }
  }

  ParsedUnit unit_;
  EngineOptions options_;
  LintResult lint_;
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<TraceBuffer> trace_;
  std::optional<ProgramClassification> classification_;
  std::optional<InflationaryReport> inflationary_;
  // Heap-allocated so the join-order priors handed to evaluators stay valid
  // across moves of this object (same reasoning as the metrics sinks).
  std::unique_ptr<FlowAnalysis> analysis_;
  std::optional<RelationalSpecification> spec_;
  SpecificationBuildInfo spec_info_;
};

}  // namespace chronolog

#endif  // CHRONOLOG_CORE_ENGINE_H_
