#include "core/engine.h"

#include "ast/printer.h"
#include "eval/provenance.h"

namespace chronolog {

Result<TemporalDatabase> TemporalDatabase::ApplyLintLevel(
    TemporalDatabase tdd) {
  if (tdd.options_.lint_level == EngineOptions::LintLevel::kOff) {
    return std::move(tdd);
  }
  LintResult lint = LintProgram(tdd.unit_.program, tdd.unit_.database,
                                tdd.options_.lint);
  if (tdd.options_.lint_level == EngineOptions::LintLevel::kReject &&
      lint.has_errors()) {
    std::string message = "program rejected by chronolog_lint:";
    for (const Diagnostic& diag : lint.diagnostics) {
      if (diag.severity == Severity::kError) {
        message += "\n  " + diag.ToString();
      }
    }
    return InvalidArgumentError(message);
  }
  tdd.lint_ = std::move(lint);
  return std::move(tdd);
}

Result<TemporalDatabase> TemporalDatabase::FromSource(std::string_view source,
                                                      EngineOptions options) {
  CHRONOLOG_ASSIGN_OR_RETURN(ParsedUnit unit, Parser::Parse(source));
  return ApplyLintLevel(TemporalDatabase(std::move(unit), options));
}

Result<TemporalDatabase> TemporalDatabase::FromParsedUnit(
    ParsedUnit unit, EngineOptions options) {
  return ApplyLintLevel(TemporalDatabase(std::move(unit), options));
}

const ProgramClassification& TemporalDatabase::classification() {
  if (!classification_.has_value()) {
    classification_ = ClassifyProgram(unit_.program);
  }
  return *classification_;
}

Result<InflationaryReport> TemporalDatabase::inflationary() {
  if (!inflationary_.has_value()) {
    CHRONOLOG_ASSIGN_OR_RETURN(
        InflationaryReport report,
        CheckInflationary(unit_.program, options_.inflationary_check));
    inflationary_ = std::move(report);
  }
  return *inflationary_;
}

Result<const RelationalSpecification*> TemporalDatabase::specification() {
  if (!spec_.has_value()) {
    CHRONOLOG_ASSIGN_OR_RETURN(
        RelationalSpecification spec,
        BuildSpecification(unit_.program, unit_.database, options_.period,
                           &spec_info_));
    spec_ = std::move(spec);
  }
  return &*spec_;
}

Result<bool> TemporalDatabase::Ask(std::string_view ground_atom) {
  CHRONOLOG_ASSIGN_OR_RETURN(GroundAtom atom,
                             ParseGroundAtom(ground_atom, vocab()));
  CHRONOLOG_ASSIGN_OR_RETURN(const RelationalSpecification* spec,
                             specification());
  return spec->Ask(atom);
}

Result<bool> TemporalDatabase::AskBt(std::string_view ground_atom,
                                     std::optional<int64_t> range) {
  CHRONOLOG_ASSIGN_OR_RETURN(GroundAtom atom,
                             ParseGroundAtom(ground_atom, vocab()));
  BtOptions options;
  options.num_threads = options_.num_threads;
  options.metrics = metrics_.get();
  options.trace = trace_.get();
  if (range.has_value()) {
    options.range = *range;
  } else {
    // range(Z ∧ D) <= b + c + p: past b+c the states cycle with period p.
    CHRONOLOG_ASSIGN_OR_RETURN(const RelationalSpecification* spec,
                               specification());
    options.range = spec->num_representatives();
  }
  CHRONOLOG_ASSIGN_OR_RETURN(BtResult result,
                             RunBt(unit_.program, unit_.database, atom,
                                   options));
  return result.answer;
}

Result<QueryAnswer> TemporalDatabase::Query(std::string_view query_text) {
  // `::chronolog::Query` disambiguates the AST type from this member.
  CHRONOLOG_ASSIGN_OR_RETURN(::chronolog::Query parsed,
                             ParseQuery(query_text, vocab()));
  CHRONOLOG_ASSIGN_OR_RETURN(const RelationalSpecification* spec,
                             specification());
  return EvaluateQueryOverSpec(parsed, *spec);
}

Result<std::string> TemporalDatabase::Explain(std::string_view ground_atom) {
  CHRONOLOG_ASSIGN_OR_RETURN(GroundAtom atom,
                             ParseGroundAtom(ground_atom, vocab()));
  CHRONOLOG_ASSIGN_OR_RETURN(const RelationalSpecification* spec,
                             specification());
  std::string prefix;
  if (vocab().predicate(atom.pred).is_temporal) {
    int64_t canonical = spec->Canonicalize(atom.time);
    if (canonical != atom.time) {
      prefix = GroundAtomToString(atom, vocab()) +
               " rewrites (W) to its representative:\n";
      atom.time = canonical;
    }
  }
  // Materialise with provenance over a horizon that covers every proof of
  // atoms within the representative segment (same margin as algorithm BT:
  // representatives act as both h and range here).
  FixpointOptions options;
  options.max_time = 2 * spec->num_representatives();
  options.metrics = metrics_.get();
  options.trace = trace_.get();
  CHRONOLOG_ASSIGN_OR_RETURN(
      ProofForest forest,
      MaterializeWithProvenance(unit_.program, unit_.database, options));
  CHRONOLOG_ASSIGN_OR_RETURN(std::string proof,
                             forest.Explain(atom, unit_.program));
  return prefix + proof;
}

std::string TemporalDatabase::MetricsJson() const {
  if (metrics_ == nullptr) return "{}";
  std::string out = "{\"metrics\":" + metrics_->ToJson();
  if (trace_ != nullptr) out += ",\"trace\":" + trace_->ToJson();
  out += "}";
  return out;
}

std::string TemporalDatabase::Describe() {
  std::string out;
  out += "rules:            " + std::to_string(program().rules().size()) + "\n";
  out += "facts:            " + std::to_string(database().size()) + "\n";
  out += "database c:       " + std::to_string(database().MaxTemporalDepth()) +
         "\n";
  out += classification().ToString();
  Result<InflationaryReport> inflat = inflationary();
  out += "inflationary:     ";
  out += inflat.ok() ? inflat->ToString(vocab())
                     : std::string("(check failed: ") +
                           inflat.status().ToString() + ")";
  out += "\n";
  Result<const RelationalSpecification*> spec = specification();
  if (spec.ok()) {
    out += "period:           (b=" + std::to_string((*spec)->period().b) +
           ", p=" + std::to_string((*spec)->period().p) + ")";
    out += spec_info_.exact_period ? "  [exact]\n" : "  [verified-doubling]\n";
    out += "representatives:  " + std::to_string((*spec)->num_representatives()) +
           "\n";
    out += "primary db size:  " + std::to_string((*spec)->SizeInFacts()) + "\n";
  } else {
    out += "specification:    (failed: " + spec.status().ToString() + ")\n";
  }
  return out;
}

}  // namespace chronolog
