#include "core/engine.h"

#include <chrono>

#include "ast/printer.h"
#include "eval/provenance.h"

namespace chronolog {

namespace {

/// Engine log events honour the per-engine override before the global
/// threshold (structured logging, src/util/log.h).
LogEvent EngineLog(LogLevel level, std::string_view event,
                   const EngineOptions& options) {
  return LogEvent(level, event, options.log_level.value_or(GlobalLogLevel()));
}

}  // namespace

Result<TemporalDatabase> TemporalDatabase::ApplyLintLevel(
    TemporalDatabase tdd) {
  if (tdd.options_.lint_level == EngineOptions::LintLevel::kOff) {
    return tdd;
  }
  LintResult lint = LintProgram(tdd.unit_.program, tdd.unit_.database,
                                tdd.options_.lint);
  if (tdd.options_.lint_level == EngineOptions::LintLevel::kReject &&
      lint.has_errors()) {
    std::string message = "program rejected by chronolog_lint:";
    for (const Diagnostic& diag : lint.diagnostics) {
      if (diag.severity == Severity::kError) {
        message += "\n  " + diag.ToString();
      }
    }
    EngineLog(LogLevel::kError, "engine.lint_reject", tdd.options_)
        .Uint("errors", lint.CountSeverity(Severity::kError))
        .Uint("warnings", lint.CountSeverity(Severity::kWarning));
    return InvalidArgumentError(message);
  }
  if (!lint.diagnostics.empty()) {
    EngineLog(LogLevel::kWarn, "engine.lint", tdd.options_)
        .Uint("errors", lint.CountSeverity(Severity::kError))
        .Uint("warnings", lint.CountSeverity(Severity::kWarning))
        .Uint("diagnostics", lint.diagnostics.size());
  }
  tdd.lint_ = std::move(lint);
  return tdd;
}

Result<TemporalDatabase> TemporalDatabase::FromSource(std::string_view source,
                                                      EngineOptions options) {
  CHRONOLOG_ASSIGN_OR_RETURN(ParsedUnit unit, Parser::Parse(source));
  return ApplyLintLevel(TemporalDatabase(std::move(unit), options));
}

Result<TemporalDatabase> TemporalDatabase::FromParsedUnit(
    ParsedUnit unit, EngineOptions options) {
  return ApplyLintLevel(TemporalDatabase(std::move(unit), options));
}

const ProgramClassification& TemporalDatabase::classification() {
  if (!classification_.has_value()) {
    classification_ = ClassifyProgram(unit_.program);
  }
  return *classification_;
}

Result<InflationaryReport> TemporalDatabase::inflationary() {
  if (!inflationary_.has_value()) {
    CHRONOLOG_ASSIGN_OR_RETURN(
        InflationaryReport report,
        CheckInflationary(unit_.program, options_.inflationary_check));
    inflationary_ = std::move(report);
  }
  return *inflationary_;
}

const FlowAnalysis& TemporalDatabase::analysis() {
  if (analysis_ == nullptr) {
    analysis_ = std::make_unique<FlowAnalysis>(
        AnalyzeProgram(unit_.program, unit_.database, options_.flow));
    EngineLog(LogLevel::kInfo, "engine.analysis", options_)
        .Bool("bounded", analysis_->hints.bounded)
        .Int("static_horizon", analysis_->hints.static_horizon)
        .Int("period_divisor", analysis_->hints.period_divisor)
        .Int("initial_horizon_hint", analysis_->hints.initial_horizon)
        .Int("program_degree", analysis_->degrees.program_degree);
  }
  return *analysis_;
}

Result<const RelationalSpecification*> TemporalDatabase::specification() {
  if (!spec_.has_value()) {
    // Under `analyze`, detection options are seeded from the static hints:
    // the initial doubling window starts at the predicted stabilization
    // horizon and the adornment join-order priors seed the plan caches.
    // Both are cost-only steers — the detected period and the resulting
    // specification are bit-identical to an unseeded build (the soundness
    // gate in tests/flow_soundness_test.cc asserts exactly this).
    PeriodDetectionOptions period_options = options_.period;
    if (options_.analyze) {
      const FlowAnalysis& flow = analysis();
      SeedPeriodOptions(flow.hints, &period_options);
      period_options.plan_priors = &flow.adornments.priors;
    }
    const auto start = std::chrono::steady_clock::now();
    Result<RelationalSpecification> spec = BuildSpecification(
        unit_.program, unit_.database, period_options, &spec_info_);
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    if (!spec.ok()) {
      EngineLog(LogLevel::kError, "engine.spec_build_failed", options_)
          .Str("status", spec.status().ToString())
          .Num("wall_ms", wall_ms);
      return spec.status();
    }
    EngineLog(LogLevel::kInfo, "engine.spec_build", options_)
        .Int("period_b", spec->period().b)
        .Int("period_p", spec->period().p)
        .Int("representatives", spec->num_representatives())
        .Uint("primary_facts", spec->SizeInFacts())
        .Bool("exact_period", spec_info_.exact_period)
        .Num("wall_ms", wall_ms);
    spec_ = std::move(spec).value();
  }
  return &*spec_;
}

Result<bool> TemporalDatabase::Ask(std::string_view ground_atom) {
  CHRONOLOG_ASSIGN_OR_RETURN(GroundAtom atom,
                             ParseGroundAtom(ground_atom, vocab()));
  CHRONOLOG_ASSIGN_OR_RETURN(const RelationalSpecification* spec,
                             specification());
  if (metrics_ != nullptr) metrics_->counter("query.asks")->Add();
  return spec->Ask(atom);
}

Result<bool> TemporalDatabase::AskBt(std::string_view ground_atom,
                                     std::optional<int64_t> range) {
  CHRONOLOG_ASSIGN_OR_RETURN(GroundAtom atom,
                             ParseGroundAtom(ground_atom, vocab()));
  BtOptions options;
  options.num_threads = options_.num_threads;
  options.metrics = metrics_.get();
  options.trace = trace_.get();
  if (range.has_value()) {
    options.range = *range;
  } else {
    // range(Z ∧ D) <= b + c + p: past b+c the states cycle with period p.
    CHRONOLOG_ASSIGN_OR_RETURN(const RelationalSpecification* spec,
                               specification());
    options.range = spec->num_representatives();
  }
  CHRONOLOG_ASSIGN_OR_RETURN(BtResult result,
                             RunBt(unit_.program, unit_.database, atom,
                                   options));
  return result.answer;
}

Result<QueryAnswer> TemporalDatabase::Query(std::string_view query_text,
                                            QueryLimits limits) {
  // `::chronolog::Query` disambiguates the AST type from this member.
  CHRONOLOG_ASSIGN_OR_RETURN(::chronolog::Query parsed,
                             ParseQuery(query_text, vocab()));
  CHRONOLOG_ASSIGN_OR_RETURN(const RelationalSpecification* spec,
                             specification());
  QueryEvalOptions eval_options;
  eval_options.metrics = metrics_.get();
  eval_options.trace = trace_.get();
  if (limits.timeout.count() > 0) {
    eval_options.deadline = std::chrono::steady_clock::now() + limits.timeout;
  }
  eval_options.max_rows = limits.max_rows;
  return EvaluateQueryOverSpec(parsed, *spec, eval_options);
}

Result<std::string> TemporalDatabase::Explain(std::string_view ground_atom) {
  CHRONOLOG_ASSIGN_OR_RETURN(GroundAtom atom,
                             ParseGroundAtom(ground_atom, vocab()));
  CHRONOLOG_ASSIGN_OR_RETURN(const RelationalSpecification* spec,
                             specification());
  std::string prefix;
  if (vocab().predicate(atom.pred).is_temporal) {
    int64_t canonical = spec->Canonicalize(atom.time);
    if (canonical != atom.time) {
      prefix = GroundAtomToString(atom, vocab()) +
               " rewrites (W) to its representative:\n";
      atom.time = canonical;
    }
  }
  // Materialise with provenance over a horizon that covers every proof of
  // atoms within the representative segment (same margin as algorithm BT:
  // representatives act as both h and range here).
  FixpointOptions options;
  options.max_time = 2 * spec->num_representatives();
  options.metrics = metrics_.get();
  options.trace = trace_.get();
  CHRONOLOG_ASSIGN_OR_RETURN(
      ProofForest forest,
      MaterializeWithProvenance(unit_.program, unit_.database, options));
  CHRONOLOG_ASSIGN_OR_RETURN(std::string proof,
                             forest.Explain(atom, unit_.program));
  return prefix + proof;
}

std::string TemporalDatabase::MetricsJson() const {
  if (metrics_ == nullptr) return "{}";
  std::string out = "{\"metrics\":" + metrics_->ToJson();
  if (trace_ != nullptr) out += ",\"trace\":" + trace_->ToJson();
  out += "}";
  return out;
}

std::string TemporalDatabase::Describe() {
  std::string out;
  out += "rules:            " + std::to_string(program().rules().size()) + "\n";
  out += "facts:            " + std::to_string(database().size()) + "\n";
  out += "database c:       " + std::to_string(database().MaxTemporalDepth()) +
         "\n";
  out += classification().ToString();
  Result<InflationaryReport> inflat = inflationary();
  out += "inflationary:     ";
  out += inflat.ok() ? inflat->ToString(vocab())
                     : std::string("(check failed: ") +
                           inflat.status().ToString() + ")";
  out += "\n";
  Result<const RelationalSpecification*> spec = specification();
  if (spec.ok()) {
    out += "period:           (b=" + std::to_string((*spec)->period().b) +
           ", p=" + std::to_string((*spec)->period().p) + ")";
    out += spec_info_.exact_period ? "  [exact]\n" : "  [verified-doubling]\n";
    out += "representatives:  " + std::to_string((*spec)->num_representatives()) +
           "\n";
    out += "primary db size:  " + std::to_string((*spec)->SizeInFacts()) + "\n";
  } else {
    out += "specification:    (failed: " + spec.status().ToString() + ")\n";
  }
  return out;
}

}  // namespace chronolog
