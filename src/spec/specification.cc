#include "spec/specification.h"

#include "ast/printer.h"

namespace chronolog {

std::string RelationalSpecification::ToString() const {
  std::string out;
  out += "T = {0, ..., " + std::to_string(num_representatives() - 1) + "}\n";
  out += "W = {" + std::to_string(rewrite_lhs()) + " -> " +
         std::to_string(rewrite_lhs() - period_.p) + "}\n";
  out += "B:\n";
  primary_.ForEach([&](PredicateId pred, int64_t time, const Tuple& args) {
    GroundAtom atom(pred, time, args);
    out += "  " + GroundAtomToString(atom, primary_.vocab()) + "\n";
  });
  return out;
}

Result<RelationalSpecification> BuildSpecification(
    const Program& program, const Database& db,
    const PeriodDetectionOptions& options, SpecificationBuildInfo* info) {
  PeriodDetectionOptions detect_options = options;
  if (info != nullptr && detect_options.plan_report == nullptr) {
    detect_options.plan_report = &info->plans;
  }
  CHRONOLOG_ASSIGN_OR_RETURN(PeriodDetection detection,
                             DetectPeriod(program, db, detect_options));
  if (info != nullptr) {
    info->exact_period = detection.exact;
    info->stats = detection.stats;
    info->detection_horizon = detection.horizon;
  }
  // B = least model on the representative segment [0, b+c+p-1] plus the
  // non-temporal part (already inside the interpretation).
  Interpretation primary = std::move(detection.model);
  primary.TruncateInPlace(detection.period.b + detection.c +
                          detection.period.p - 1);
  return RelationalSpecification(detection.period, detection.c,
                                 std::move(primary));
}

}  // namespace chronolog
