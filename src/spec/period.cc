#include "spec/period.h"

#include <algorithm>
#include <chrono>

#include "eval/fixpoint.h"

namespace chronolog {

bool FindMinimalPeriodInWindow(const std::vector<State>& states,
                               int64_t min_cycles, int64_t* k_out,
                               int64_t* p_out) {
  const int64_t n = static_cast<int64_t>(states.size());
  for (int64_t p = 1; p <= n / (min_cycles + 1); ++p) {
    // Smallest k with states[t] == states[t+p] for all t in [k, n-1-p]:
    // scan down from the end until the first mismatch.
    int64_t k = n - p;
    while (k > 0 && states[k - 1] == states[k - 1 + p]) --k;
    if (k == n - p) continue;  // no trailing agreement at all
    // Evidence: the agreeing suffix must span at least min_cycles cycles.
    if (n - k >= (min_cycles + 1) * p) {
      *k_out = k;
      *p_out = p;
      return true;
    }
  }
  return false;
}

namespace {

/// Appends `M[from...horizon]` to `states` (which must already hold
/// `M[0...from-1]`), timing the extraction into `stats->extract_ms`.
void ExtractStateSuffix(const Interpretation& model, int64_t from,
                        int64_t horizon, std::vector<State>* states,
                        EvalStats* stats) {
  const auto start = std::chrono::steady_clock::now();
  states->reserve(static_cast<std::size_t>(horizon) + 1);
  for (int64_t t = from; t <= horizon; ++t) {
    states->push_back(State::FromInterpretation(model, t));
  }
  stats->extract_ms +=
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
}

Result<PeriodDetection> DetectByDoubling(const Program& program,
                                         const Database& db,
                                         const PeriodDetectionOptions& options,
                                         int64_t c) {
  PeriodDetection result{Period{}, c, 0, Interpretation(program.vocab_ptr()),
                         {}, /*exact=*/false, {}};
  const int64_t g = std::max<int64_t>(1, program.MaxTemporalDepth());

  int64_t m = std::max(options.initial_horizon, c + 4 * g + 4);
  bool have_candidate = false;
  int64_t prev_k = -1;
  int64_t prev_p = -1;

  // The model and its extracted states persist across doublings: probing
  // horizon 2m extends the closed horizon-m model instead of recomputing it
  // (ExtendFixpoint), and only states the extension touched are re-extracted.
  Interpretation model(program.vocab_ptr());
  std::vector<State> states;
  int64_t prev_m = -1;

  while (m <= options.max_horizon) {
    FixpointOptions fp;
    fp.max_time = m;
    fp.max_facts = options.max_facts;
    fp.num_threads = options.num_threads;
    EvalStats round_stats;
    if (prev_m < 0) {
      CHRONOLOG_ASSIGN_OR_RETURN(
          model, SemiNaiveFixpoint(program, db, fp, &round_stats));
      ExtractStateSuffix(model, 0, m, &states, &round_stats);
    } else {
      CHRONOLOG_ASSIGN_OR_RETURN(
          model,
          ExtendFixpoint(program, db, std::move(model), prev_m, fp,
                         &round_stats));
      // States strictly below the earliest time the extension touched are
      // unchanged (a non-progressive extension can rewrite history: newly
      // admitted facts feed backward rules).
      int64_t extract_from = std::min(prev_m + 1, round_stats.min_new_time);
      states.resize(static_cast<std::size_t>(extract_from));
      ExtractStateSuffix(model, extract_from, m, &states, &round_stats);
    }
    result.stats.Add(round_stats);

    int64_t k = 0;
    int64_t p = 0;
    if (FindMinimalPeriodInWindow(states, /*min_cycles=*/3, &k, &p)) {
      if (have_candidate && k == prev_k && p == prev_p) {
        // Stable across a doubling: accept.
        result.period.b = std::max<int64_t>(0, k - c);
        result.period.p = p;
        result.horizon = m;
        result.model = std::move(model);
        result.states = std::move(states);
        return result;
      }
      have_candidate = true;
      prev_k = k;
      prev_p = p;
    } else {
      have_candidate = false;
    }
    prev_m = m;
    m *= 2;
  }
  return ResourceExhaustedError(
      "DetectPeriod: no stable period within max_horizon = " +
      std::to_string(options.max_horizon) +
      "; the period may be exponential in the database size (Theorem 3.1)");
}

}  // namespace

Result<PeriodDetection> DetectPeriod(const Program& program,
                                     const Database& db,
                                     const PeriodDetectionOptions& options) {
  const int64_t c = db.MaxTemporalDepth();
  ProgressivityReport progressive = CheckProgressive(program);
  if (progressive.progressive) {
    ForwardOptions fwd;
    fwd.max_steps = options.max_horizon;
    fwd.max_facts = options.max_facts;
    CHRONOLOG_ASSIGN_OR_RETURN(ForwardResult forward,
                               ForwardSimulate(program, db, fwd));
    PeriodDetection result{forward.period,
                           c,
                           forward.horizon,
                           std::move(forward.model),
                           std::move(forward.states),
                           /*exact=*/true,
                           forward.stats};
    return result;
  }
  if (!options.allow_general) {
    return FailedPreconditionError(
        "DetectPeriod: program is not progressive (" + progressive.reason +
        ") and the verified-doubling fallback is disabled");
  }
  return DetectByDoubling(program, db, options, c);
}

}  // namespace chronolog
