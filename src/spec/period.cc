#include "spec/period.h"

#include <algorithm>
#include <chrono>

#include "eval/fixpoint.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace chronolog {

bool FindMinimalPeriodInWindow(const std::vector<State>& states,
                               int64_t min_cycles, int64_t* k_out,
                               int64_t* p_out) {
  const int64_t n = static_cast<int64_t>(states.size());
  for (int64_t p = 1; p <= n / (min_cycles + 1); ++p) {
    // Smallest k with states[t] == states[t+p] for all t in [k, n-1-p]:
    // scan down from the end until the first mismatch.
    int64_t k = n - p;
    while (k > 0 && states[k - 1] == states[k - 1 + p]) --k;
    if (k == n - p) continue;  // no trailing agreement at all
    // Evidence: the agreeing suffix must span at least min_cycles cycles.
    if (n - k >= (min_cycles + 1) * p) {
      *k_out = k;
      *p_out = p;
      return true;
    }
  }
  return false;
}

void PeriodCandidateTracker::Update(const Interpretation& model,
                                    int64_t horizon, int64_t changed_from) {
  const int64_t n_old = static_cast<int64_t>(hashes_.size());
  const int64_t from = std::max<int64_t>(0, std::min(changed_from, n_old));
  hashes_.resize(static_cast<std::size_t>(horizon) + 1);
  for (int64_t t = from; t <= horizon; ++t) {
    hashes_[static_cast<std::size_t>(t)] = model.SnapshotHash(t);
  }
  if (from < n_old) {
    // History rewritten below the previously covered horizon: every cached
    // frontier may rest on stale comparisons. Drop them all; the next Find
    // re-scans lazily, exactly like a from-scratch probe.
    candidates_.clear();
  }
}

bool PeriodCandidateTracker::Find(int64_t min_cycles, int64_t* k_out,
                                  int64_t* p_out) {
  const int64_t n = static_cast<int64_t>(hashes_.size());
  const int64_t p_max = n / (min_cycles + 1);
  if (static_cast<int64_t>(candidates_.size()) < p_max) {
    candidates_.resize(static_cast<std::size_t>(p_max));
  }
  for (int64_t p = 1; p <= p_max; ++p) {
    Candidate& cand = candidates_[static_cast<std::size_t>(p - 1)];
    int64_t k;
    if (cand.scanned_n < p + 1) {
      // First scan for this period: walk down from the end until the first
      // mismatch, as the reference scan does.
      k = n - p;
      while (k > 0 && hashes_[static_cast<std::size_t>(k - 1)] ==
                          hashes_[static_cast<std::size_t>(k - 1 + p)]) {
        --k;
      }
    } else {
      // Resume: only positions t >= scanned_n - p compare against hashes the
      // previous scan had not seen. A mismatch among them caps the suffix;
      // otherwise the old frontier stands (the comparison at cand.k - 1, if
      // any, involved only unchanged hashes and still mismatches).
      const int64_t floor_t = cand.scanned_n - p;
      int64_t t = n - 1 - p;
      while (t >= floor_t && hashes_[static_cast<std::size_t>(t)] ==
                                 hashes_[static_cast<std::size_t>(t + p)]) {
        --t;
      }
      k = t >= floor_t ? t + 1 : cand.k;
    }
    cand.k = k;
    cand.scanned_n = n;
    if (k == n - p) continue;  // no trailing agreement at all
    if (n - k >= (min_cycles + 1) * p) {
      *k_out = k;
      *p_out = p;
      return true;
    }
  }
  return false;
}

bool PeriodCandidateTracker::VerifyCandidate(const Interpretation& model,
                                             int64_t k, int64_t p) {
  const int64_t n = static_cast<int64_t>(hashes_.size());
  for (int64_t t = n - 1 - p; t >= k; --t) {
    if (!model.SnapshotEquals(t, t + p)) {
      // Genuine hash collision: the states differ although their hashes
      // agree. Record the refuted position as this period's frontier so the
      // scan never re-proposes it.
      candidates_[static_cast<std::size_t>(p - 1)].k =
          std::max(candidates_[static_cast<std::size_t>(p - 1)].k, t + 1);
      return false;
    }
  }
  return true;
}

int64_t NextDoublingHorizon(int64_t m, int64_t max_horizon) {
  // `2m <= max_horizon` tested without computing 2m: for max_horizon above
  // INT64_MAX / 2 the naive doubling wraps negative and the probe loop spins
  // on a nonsense horizon instead of reporting exhaustion.
  if (m > max_horizon / 2) return -1;
  return 2 * m;
}

namespace {

Result<PeriodDetection> DetectByDoubling(const Program& program,
                                         const Database& db,
                                         const PeriodDetectionOptions& options,
                                         int64_t c) {
  TraceSpan span(options.trace, "period.doubling");
  // chronolog_obs instruments, fetched up front (see RunSemiNaiveRounds);
  // null when no registry is attached.
  MetricsRegistry* const metrics = options.metrics;
  Counter* doublings_counter = nullptr;
  Histogram* extend_hist = nullptr;
  Histogram* update_hist = nullptr;
  Histogram* find_hist = nullptr;
  Histogram* verify_hist = nullptr;
  if (metrics != nullptr) {
    doublings_counter = metrics->counter("period.doublings");
    extend_hist = metrics->histogram("period.extend_ns");
    update_hist = metrics->histogram("period.update_ns");
    find_hist = metrics->histogram("period.find_ns");
    verify_hist = metrics->histogram("period.verify_ns");
  }

  PeriodDetection result{Period{}, c, 0, Interpretation(program.vocab_ptr()),
                         /*exact=*/false, {}};
  const int64_t g = std::max<int64_t>(1, program.MaxTemporalDepth());

  int64_t m = std::max(options.initial_horizon, c + 4 * g + 4);
  bool have_candidate = false;
  int64_t prev_k = -1;
  int64_t prev_p = -1;

  // The model and the candidate tracker persist across doublings: probing
  // horizon 2m extends the closed horizon-m model instead of recomputing it
  // (ExtendFixpoint), and the per-period mismatch frontiers resume over the
  // model's snapshot hashes instead of re-extracting and re-scanning states.
  Interpretation model(program.vocab_ptr());
  PeriodCandidateTracker tracker;
  int64_t prev_m = -1;

  while (m <= options.max_horizon) {
    if (doublings_counter != nullptr) doublings_counter->Add();
    FixpointOptions fp;
    fp.max_time = m;
    fp.max_facts = options.max_facts;
    fp.num_threads = options.num_threads;
    fp.metrics = options.metrics;
    fp.trace = options.trace;
    fp.plan_priors = options.plan_priors;
    fp.plan_report = options.plan_report;
    EvalStats round_stats;
    int64_t changed_from = 0;
    {
      TraceSpan extend_span(options.trace, "period.extend");
      PhaseTimer extend_timer(metrics != nullptr, /*field=*/nullptr,
                              extend_hist);
      if (prev_m < 0) {
        CHRONOLOG_ASSIGN_OR_RETURN(
            model, SemiNaiveFixpoint(program, db, fp, &round_stats));
      } else {
        CHRONOLOG_ASSIGN_OR_RETURN(
            model,
            ExtendFixpoint(program, db, std::move(model), prev_m, fp,
                           &round_stats));
        // Hashes strictly below the earliest time the extension touched are
        // unchanged (a non-progressive extension can rewrite history: newly
        // admitted facts feed backward rules).
        changed_from = std::min(prev_m + 1, round_stats.min_new_time);
      }
    }
    {
      // What remains of the old extraction phase: an O(changed suffix)
      // refresh of cached hash words.
      TraceSpan update_span(options.trace, "period.update");
      PhaseTimer update_timer(/*enabled=*/true, &round_stats.extract_ms,
                              update_hist);
      tracker.Update(model, m, changed_from);
    }
    result.stats.Add(round_stats);

    int64_t k = 0;
    int64_t p = 0;
    bool found;
    {
      TraceSpan find_span(options.trace, "period.find");
      PhaseTimer find_timer(metrics != nullptr, /*field=*/nullptr, find_hist);
      found = tracker.Find(/*min_cycles=*/3, &k, &p);
    }
    if (found) {
      if (have_candidate && k == prev_k && p == prev_p) {
        TraceSpan verify_span(options.trace, "period.verify");
        PhaseTimer verify_timer(metrics != nullptr, /*field=*/nullptr,
                                verify_hist);
        const bool verified = tracker.VerifyCandidate(model, k, p);
        verify_timer.Stop();
        if (verified) {
          // Stable across a doubling and collision-checked: accept.
          result.period.b = std::max<int64_t>(0, k - c);
          result.period.p = p;
          result.horizon = m;
          result.model = std::move(model);
          return result;
        }
        // Collision refuted the candidate; its frontier moved, restart the
        // stability count.
        have_candidate = false;
      } else {
        have_candidate = true;
        prev_k = k;
        prev_p = p;
      }
    } else {
      have_candidate = false;
    }
    prev_m = m;
    m = NextDoublingHorizon(m, options.max_horizon);
    if (m < 0) break;
  }
  return ResourceExhaustedError(
      "DetectPeriod: no stable period within max_horizon = " +
      std::to_string(options.max_horizon) +
      "; the period may be exponential in the database size (Theorem 3.1)");
}

}  // namespace

Result<PeriodDetection> DetectPeriod(const Program& program,
                                     const Database& db,
                                     const PeriodDetectionOptions& options) {
  const int64_t c = db.MaxTemporalDepth();
  ProgressivityReport progressive = CheckProgressive(program);
  if (progressive.progressive) {
    ForwardOptions fwd;
    fwd.max_steps = options.max_horizon;
    fwd.max_facts = options.max_facts;
    fwd.metrics = options.metrics;
    fwd.trace = options.trace;
    fwd.plan_report = options.plan_report;
    CHRONOLOG_ASSIGN_OR_RETURN(ForwardResult forward,
                               ForwardSimulate(program, db, fwd));
    PeriodDetection result{forward.period,
                           c,
                           forward.horizon,
                           std::move(forward.model),
                           /*exact=*/true,
                           forward.stats};
    return result;
  }
  if (!options.allow_general) {
    return FailedPreconditionError(
        "DetectPeriod: program is not progressive (" + progressive.reason +
        ") and the verified-doubling fallback is disabled");
  }
  return DetectByDoubling(program, db, options, c);
}

}  // namespace chronolog
