#ifndef CHRONOLOG_SPEC_SPECIFICATION_H_
#define CHRONOLOG_SPEC_SPECIFICATION_H_

#include <cstdint>
#include <string>

#include "ast/program.h"
#include "spec/period.h"
#include "storage/interpretation.h"
#include "util/result.h"

namespace chronolog {

/// A relational specification `S_{Z∧D} = (T, B, W)` of the (possibly
/// infinite) least model `M_{Z∧D}` (Section 3.3):
///
///  * `T` — the representative ground temporal terms `0, 1, ..., b+c+p-1`;
///  * `B` — the primary database: the least model restricted to the
///    representative terms, plus its non-temporal part;
///  * `W` — for TDDs a single ground rewrite rule `b+c+p -> b+c`, applied to
///    exhaustion to canonicalise any ground temporal term.
///
/// Every temporal query is invariant w.r.t. relational specifications
/// (Proposition 3.1), so evaluation over `B` with rewriting by `W` answers
/// queries against the infinite least model.
class RelationalSpecification {
 public:
  RelationalSpecification(Period period, int64_t c, Interpretation primary)
      : period_(period), c_(c), primary_(std::move(primary)) {}

  const Period& period() const { return period_; }
  int64_t c() const { return c_; }

  /// Left-hand side of the single rewrite rule in `W` (`b+c+p`); its
  /// right-hand side is `lhs - p`.
  int64_t rewrite_lhs() const { return period_.b + c_ + period_.p; }

  /// Number of representative terms `|T| = b + c + p`.
  int64_t num_representatives() const {
    return period_.b + c_ + period_.p;
  }

  /// True when `t` is a representative term (already canonical).
  bool IsRepresentative(int64_t t) const {
    return t >= 0 && t < num_representatives();
  }

  /// Canonical form of the ground temporal term `t` under `W`: rewriting
  /// `b+c+p -> b+c` to exhaustion folds `t` into the representative
  /// `b + c + ((t - b - c) mod p)` when `t >= b+c+p`.
  int64_t Canonicalize(int64_t t) const {
    const int64_t base = period_.b + c_;
    if (t < base + period_.p) return t;
    return base + (t - base) % period_.p;
  }

  /// The primary database `B` (facts at representative times plus the
  /// non-temporal part).
  const Interpretation& primary() const { return primary_; }

  /// Yes-no query for an arbitrary ground atom: canonicalise, then look up
  /// in `B`. Decides `M_{Z∧D} |= atom` in time independent of the temporal
  /// depth of the atom.
  bool Ask(const GroundAtom& atom) const {
    if (!primary_.vocab().predicate(atom.pred).is_temporal) {
      return primary_.Contains(atom);
    }
    if (atom.time < 0) return false;
    GroundAtom canonical = atom;
    canonical.time = Canonicalize(atom.time);
    return primary_.Contains(canonical);
  }

  /// Total number of facts in `B` (the specification's size measure; its
  /// term component is `|T| = b+c+p` and `W` is constant-sized).
  std::size_t SizeInFacts() const { return primary_.size(); }

  /// Human-readable rendering of `(T, B, W)` for diagnostics and the REPL.
  std::string ToString() const;

 private:
  Period period_;
  int64_t c_;
  Interpretation primary_;
};

/// Builds the relational specification of `M_{Z∧D}`: detects the minimal
/// period and truncates the materialised least model to the representative
/// segment (the procedure of the paper's reference [6], specialised to
/// TDDs).
struct SpecificationBuildInfo {
  bool exact_period = true;
  EvalStats stats;
  int64_t detection_horizon = 0;
  /// Join plans executed by the detection run that produced the spec
  /// (indexed like Program::rules(); empty when the caller routed
  /// PeriodDetectionOptions::plan_report elsewhere). Consumed by EXPLAIN.
  RulePlanReport plans;
};

Result<RelationalSpecification> BuildSpecification(
    const Program& program, const Database& db,
    const PeriodDetectionOptions& options = {},
    SpecificationBuildInfo* info = nullptr);

}  // namespace chronolog

#endif  // CHRONOLOG_SPEC_SPECIFICATION_H_
