#ifndef CHRONOLOG_SPEC_PERIOD_H_
#define CHRONOLOG_SPEC_PERIOD_H_

#include <cstdint>
#include <vector>

#include "ast/program.h"
#include "eval/fixpoint.h"
#include "eval/forward.h"
#include "storage/interpretation.h"
#include "storage/state.h"
#include "util/result.h"

namespace chronolog {

/// Options for minimal-period detection.
struct PeriodDetectionOptions {
  /// Starting window for the verified-doubling detector.
  int64_t initial_horizon = 64;
  /// Hard ceiling for both detectors; exceeded => kResourceExhausted
  /// (periods can be exponential in the database size, Theorem 3.1).
  int64_t max_horizon = 1 << 20;
  /// Permit the verified-doubling fallback for non-progressive programs.
  /// When false, non-progressive programs fail with kFailedPrecondition.
  bool allow_general = true;
  uint64_t max_facts = 50'000'000;
  /// Worker threads for the underlying semi-naive fixpoints
  /// (FixpointOptions::num_threads); 1 = sequential.
  int num_threads = DefaultFixpointThreads();
  /// Observability sinks (chronolog_obs), forwarded to the underlying
  /// fixpoints / forward simulation; null disables collection.
  MetricsRegistry* metrics = nullptr;
  TraceBuffer* trace = nullptr;
  /// Static join-order priors (chronolog_flow adornment analysis), forwarded
  /// to the doubling detector's fixpoints via FixpointOptions::plan_priors.
  /// Advisory only: plans never affect results. The progressive (exact
  /// forward) path does not consume priors. Must outlive detection.
  const JoinOrderPriors* plan_priors = nullptr;
  /// When non-null, detection snapshots the executed join plans (of the
  /// last fixpoint / the forward simulation) into `*plan_report` for
  /// EXPLAIN; forwarded to FixpointOptions / ForwardOptions.
  RulePlanReport* plan_report = nullptr;
};

/// Outcome of period detection: the minimal period of `M_{Z∧D}` and the
/// least model materialised far enough to build a relational specification.
/// Per-time states are not materialised (detection runs on the model's
/// incrementally maintained snapshot hashes); callers that want them use
/// ExtractStates(model, 0, horizon).
struct PeriodDetection {
  Period period;
  int64_t c = 0;        // max temporal depth of the database
  int64_t horizon = 0;  // model materialised on [0...horizon]
  Interpretation model;
  /// True when produced by the exact forward detector (progressive
  /// programs); false when produced by verified doubling, which certifies
  /// the period on a window of at least two extra cycles but is not a proof.
  bool exact = true;
  EvalStats stats;
};

/// Detects the minimal period `(b, p)` of the least model of `Z ∧ D`.
///
/// Progressive programs (eval/forward.h) use the exact simulator: the state
/// windows beyond the database horizon form a deterministic orbit, so the
/// first repeated window yields the minimal period. Other programs fall
/// back to *verified doubling*: compute the truncated least model on
/// `[0...m]`, extract the minimal `(b, p)` consistent with that window,
/// then re-verify on `[0...2m]` until the answer is stable with at least two
/// full trailing cycles of slack.
Result<PeriodDetection> DetectPeriod(
    const Program& program, const Database& db,
    const PeriodDetectionOptions& options = {});

/// Returns the minimal `(k, p)` (absolute start `k`, not yet normalised by
/// `c`) such that `states[t] == states[t+p]` for all `t` in
/// `[k, states.size()-1-p]`, preferring the smallest `p` whose evidence
/// window spans at least `min_cycles` full cycles. Returns false when no
/// candidate has enough evidence.
bool FindMinimalPeriodInWindow(const std::vector<State>& states,
                               int64_t min_cycles, int64_t* k_out,
                               int64_t* p_out);

/// Incrementally maintained mirror of FindMinimalPeriodInWindow over the
/// snapshot-hash vector of a growing (occasionally history-rewritten) model.
/// The verified-doubling detector keeps one tracker alive across doublings:
/// instead of re-extracting every state and re-scanning the full window at
/// each probe, per-period mismatch frontiers are carried forward and only
/// the hashes from `changed_from` on are re-read.
///
/// Hash agreement is necessary but not sufficient for state equality, so the
/// winning candidate is verified against the live snapshots (VerifyCandidate)
/// before a caller accepts it; a failed verification (a genuine 64-bit hash
/// collision) tightens that period's frontier so the scan converges to the
/// same answer the from-scratch state scan would produce.
class PeriodCandidateTracker {
 public:
  /// Refreshes the cached hash vector to cover `M[0...horizon]` of `model`.
  /// `changed_from` is the smallest time whose snapshot may differ from the
  /// previous call (`min(prev_horizon + 1, EvalStats::min_new_time)`); when
  /// it rewrites history (falls below the previously covered horizon), all
  /// candidate frontiers are invalidated and the next Find re-scans.
  void Update(const Interpretation& model, int64_t horizon,
              int64_t changed_from);

  /// Equivalent of FindMinimalPeriodInWindow(states, min_cycles, ...) on the
  /// cached hash vector, resuming each period's scan where the previous call
  /// left off. `min_cycles` must not vary across calls on one tracker.
  bool Find(int64_t min_cycles, int64_t* k_out, int64_t* p_out);

  /// Exact in-place verification that `M[t] = M[t+p]` holds on all
  /// `t in [k, n-1-p]` (the evidence window behind a Find result). On a hash
  /// collision the frontier of `p` is advanced past the refuted position and
  /// false is returned — re-probe via Find.
  bool VerifyCandidate(const Interpretation& model, int64_t k, int64_t p);

 private:
  struct Candidate {
    int64_t k = 0;          // agreeing-suffix start at the last scan
    int64_t scanned_n = 0;  // hash-vector size the last scan covered
  };
  std::vector<std::size_t> hashes_;
  std::vector<Candidate> candidates_;  // candidates_[p - 1] tracks period p
};

/// Next probe horizon of the verified-doubling loop: `2m`, or -1 when the
/// doubling would exceed `max_horizon` — computed without overflowing even
/// for `max_horizon` above INT64_MAX / 2. Exposed for regression tests.
int64_t NextDoublingHorizon(int64_t m, int64_t max_horizon);

}  // namespace chronolog

#endif  // CHRONOLOG_SPEC_PERIOD_H_
