#ifndef CHRONOLOG_SPEC_PERIOD_H_
#define CHRONOLOG_SPEC_PERIOD_H_

#include <cstdint>
#include <vector>

#include "ast/program.h"
#include "eval/forward.h"
#include "storage/interpretation.h"
#include "storage/state.h"
#include "util/result.h"

namespace chronolog {

/// Options for minimal-period detection.
struct PeriodDetectionOptions {
  /// Starting window for the verified-doubling detector.
  int64_t initial_horizon = 64;
  /// Hard ceiling for both detectors; exceeded => kResourceExhausted
  /// (periods can be exponential in the database size, Theorem 3.1).
  int64_t max_horizon = 1 << 20;
  /// Permit the verified-doubling fallback for non-progressive programs.
  /// When false, non-progressive programs fail with kFailedPrecondition.
  bool allow_general = true;
  uint64_t max_facts = 50'000'000;
  /// Worker threads for the underlying semi-naive fixpoints
  /// (FixpointOptions::num_threads); 1 = sequential.
  int num_threads = 1;
};

/// Outcome of period detection: the minimal period of `M_{Z∧D}`, the least
/// model materialised far enough to build a relational specification, and
/// the per-time states used for detection.
struct PeriodDetection {
  Period period;
  int64_t c = 0;        // max temporal depth of the database
  int64_t horizon = 0;  // model materialised on [0...horizon]
  Interpretation model;
  std::vector<State> states;  // M[0...horizon]
  /// True when produced by the exact forward detector (progressive
  /// programs); false when produced by verified doubling, which certifies
  /// the period on a window of at least two extra cycles but is not a proof.
  bool exact = true;
  EvalStats stats;
};

/// Detects the minimal period `(b, p)` of the least model of `Z ∧ D`.
///
/// Progressive programs (eval/forward.h) use the exact simulator: the state
/// windows beyond the database horizon form a deterministic orbit, so the
/// first repeated window yields the minimal period. Other programs fall
/// back to *verified doubling*: compute the truncated least model on
/// `[0...m]`, extract the minimal `(b, p)` consistent with that window,
/// then re-verify on `[0...2m]` until the answer is stable with at least two
/// full trailing cycles of slack.
Result<PeriodDetection> DetectPeriod(
    const Program& program, const Database& db,
    const PeriodDetectionOptions& options = {});

/// Returns the minimal `(k, p)` (absolute start `k`, not yet normalised by
/// `c`) such that `states[t] == states[t+p]` for all `t` in
/// `[k, states.size()-1-p]`, preferring the smallest `p` whose evidence
/// window spans at least `min_cycles` full cycles. Returns false when no
/// candidate has enough evidence.
bool FindMinimalPeriodInWindow(const std::vector<State>& states,
                               int64_t min_cycles, int64_t* k_out,
                               int64_t* p_out);

}  // namespace chronolog

#endif  // CHRONOLOG_SPEC_PERIOD_H_
