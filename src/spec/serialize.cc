#include "spec/serialize.h"

#include <cinttypes>
#include <cstdio>

#include "ast/parser.h"
#include "ast/printer.h"

namespace chronolog {

std::string SerializeSpecification(const RelationalSpecification& spec) {
  std::string out = "%!chronolog-spec 1\n";
  out += "%!period b=" + std::to_string(spec.period().b) +
         " p=" + std::to_string(spec.period().p) +
         " c=" + std::to_string(spec.c()) + "\n";
  const Vocabulary& vocab = spec.primary().vocab();
  for (PredicateId pred : vocab.AllPredicates()) {
    const PredicateInfo& info = vocab.predicate(pred);
    out += (info.is_temporal ? "@temporal " : "@predicate ") + info.name +
           "/" + std::to_string(info.written_arity()) + ".\n";
  }
  spec.primary().ForEach([&](PredicateId pred, int64_t time,
                             const Tuple& args) {
    out += GroundAtomToString(GroundAtom(pred, time, args), vocab) + ".\n";
  });
  return out;
}

Result<RelationalSpecification> DeserializeSpecification(
    std::string_view text) {
  // Locate the `%!period` header.
  int64_t b = -1;
  int64_t p = -1;
  int64_t c = -1;
  bool versioned = false;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string line(text.substr(pos, eol - pos));
    pos = eol + 1;
    if (line.rfind("%!chronolog-spec", 0) == 0) {
      int version = 0;
      if (std::sscanf(line.c_str(), "%%!chronolog-spec %d", &version) != 1 ||
          version != 1) {
        return InvalidArgumentError("unsupported specification version: " +
                                    line);
      }
      versioned = true;
      continue;
    }
    if (line.rfind("%!period", 0) == 0) {
      if (std::sscanf(line.c_str(),
                      "%%!period b=%" SCNd64 " p=%" SCNd64 " c=%" SCNd64, &b,
                      &p, &c) != 3) {
        return InvalidArgumentError("malformed period header: " + line);
      }
      continue;
    }
  }
  if (!versioned) {
    return InvalidArgumentError(
        "missing %!chronolog-spec header; not a serialised specification");
  }
  if (b < 0 || p <= 0 || c < 0) {
    return InvalidArgumentError("missing or invalid %!period header");
  }

  CHRONOLOG_ASSIGN_OR_RETURN(ParsedUnit unit, Parser::Parse(text));
  if (!unit.program.rules().empty()) {
    return InvalidArgumentError(
        "serialised specification must not contain rules");
  }
  Interpretation primary(unit.database.vocab_ptr());
  primary.InsertDatabase(unit.database);
  return RelationalSpecification(Period{b, p}, c, std::move(primary));
}

}  // namespace chronolog
