#ifndef CHRONOLOG_SPEC_SERIALIZE_H_
#define CHRONOLOG_SPEC_SERIALIZE_H_

#include <string>
#include <string_view>

#include "spec/specification.h"
#include "util/result.h"

namespace chronolog {

/// Serialises a relational specification into a self-contained text form:
///
///   %!chronolog-spec 1
///   %!period b=0 p=2 c=0
///   @temporal even/1.
///   even(0).
///
/// Header lines are `%`-comments, so the body doubles as ordinary chronolog
/// source; `@predicate`/`@temporal` directives pin the full schema even for
/// empty relations. A saved specification answers queries without
/// re-running period detection — compile once, ship the artefact.
std::string SerializeSpecification(const RelationalSpecification& spec);

/// Parses a serialised specification back. Fails with kInvalidArgument on a
/// missing/malformed header or when the body contains rules.
Result<RelationalSpecification> DeserializeSpecification(
    std::string_view text);

}  // namespace chronolog

#endif  // CHRONOLOG_SPEC_SERIALIZE_H_
