#include "query/answers.h"

#include <algorithm>
#include <functional>

#include "util/string_util.h"

namespace chronolog {

namespace {

bool ValueLess(const QueryValue& a, const QueryValue& b) {
  if (a.temporal != b.temporal) return b.temporal;
  if (a.temporal) return a.time < b.time;
  return a.constant < b.constant;
}

bool RowLess(const std::vector<QueryValue>& a,
             const std::vector<QueryValue>& b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end(),
                                      ValueLess);
}

bool RowEq(const std::vector<QueryValue>& a,
           const std::vector<QueryValue>& b) {
  return a == b;
}

}  // namespace

Result<std::vector<std::vector<QueryValue>>> UnfoldAnswers(
    const QueryAnswer& answer, int64_t max_time) {
  if (answer.rewrite_lhs < 0) {
    return FailedPreconditionError(
        "UnfoldAnswers: answer carries no rewrite rule (it was evaluated "
        "over a materialised model, not a specification)");
  }
  const int64_t p = answer.rewrite_p;
  const int64_t cycle_start = answer.rewrite_lhs - p;

  std::vector<std::vector<QueryValue>> out;
  for (const auto& row : answer.rows) {
    // Per-column expansions.
    std::vector<std::vector<QueryValue>> columns(row.size());
    bool empty = false;
    for (std::size_t i = 0; i < row.size(); ++i) {
      const QueryValue& v = row[i];
      if (!v.temporal || v.time < cycle_start) {
        if (v.temporal && v.time > max_time) {
          empty = true;
          break;
        }
        columns[i].push_back(v);
        continue;
      }
      for (int64_t t = v.time; t <= max_time; t += p) {
        columns[i].push_back(QueryValue{true, t, 0});
      }
      if (columns[i].empty()) {
        empty = true;
        break;
      }
    }
    if (empty) continue;

    // Cartesian product.
    std::vector<QueryValue> current(row.size());
    std::function<void(std::size_t)> expand = [&](std::size_t i) {
      if (i == row.size()) {
        out.push_back(current);
        return;
      }
      for (const QueryValue& v : columns[i]) {
        current[i] = v;
        expand(i + 1);
      }
    };
    expand(0);
  }
  std::sort(out.begin(), out.end(), RowLess);
  out.erase(std::unique(out.begin(), out.end(), RowEq), out.end());
  return out;
}

std::string QueryAnswerToJson(const QueryAnswer& answer,
                              const Vocabulary& vocab) {
  std::string out = "{\"boolean\":";
  out += answer.boolean ? "true" : "false";
  out += ",\"free_vars\":[";
  for (std::size_t i = 0; i < answer.free_var_names.size(); ++i) {
    if (i > 0) out += ",";
    out += "{\"name\":\"" + JsonEscape(answer.free_var_names[i]) +
           "\",\"temporal\":";
    out += answer.free_var_temporal[i] ? "true}" : "false}";
  }
  out += "],\"rows\":[";
  for (std::size_t r = 0; r < answer.rows.size(); ++r) {
    if (r > 0) out += ",";
    out += "[";
    const auto& row = answer.rows[r];
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ",";
      if (row[i].temporal) {
        out += std::to_string(row[i].time);
      } else {
        out += "\"" + JsonEscape(vocab.ConstantName(row[i].constant)) + "\"";
      }
    }
    out += "]";
  }
  out += "],\"rewrite\":";
  if (answer.rewrite_lhs >= 0) {
    out += "{\"lhs\":" + std::to_string(answer.rewrite_lhs) +
           ",\"p\":" + std::to_string(answer.rewrite_p) + "}";
  } else {
    out += "null";
  }
  out += ",\"partial\":";
  out += answer.partial ? "true" : "false";
  out += ",\"truncated\":";
  out += answer.truncated ? "true" : "false";
  out += ",\"rows_returned\":" + std::to_string(answer.rows.size()) + "}";
  return out;
}

}  // namespace chronolog
