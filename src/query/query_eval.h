#ifndef CHRONOLOG_QUERY_QUERY_EVAL_H_
#define CHRONOLOG_QUERY_QUERY_EVAL_H_

#include <string>
#include <vector>

#include "query/query_ast.h"
#include "spec/specification.h"
#include "storage/interpretation.h"
#include "util/result.h"

namespace chronolog {

class MetricsRegistry;
class TraceBuffer;

/// Observability sinks for query evaluation (chronolog_obs; both nullable,
/// wired by the engine when `EngineOptions::collect_metrics` is set).
/// Instruments live under the `query.*` family:
///
///   query.evaluations   counter    evaluations started
///   query.latency_ns    histogram  wall time per evaluation
///   query.answers       histogram  rows per open query (0/1 for closed)
///   query.oracle_lookups counter   ground-atom lookups against `B`
///   query.rewrite_steps counter    W-rule applications folded by
///                                  canonicalisation during those lookups
struct QueryEvalOptions {
  MetricsRegistry* metrics = nullptr;
  TraceBuffer* trace = nullptr;
};

/// One value of a query answer: a ground temporal term (representative) or a
/// database constant.
struct QueryValue {
  bool temporal = false;
  int64_t time = 0;       // meaningful when temporal
  SymbolId constant = 0;  // meaningful when !temporal

  friend bool operator==(const QueryValue& a, const QueryValue& b) {
    return a.temporal == b.temporal &&
           (a.temporal ? a.time == b.time : a.constant == b.constant);
  }
};

/// Answer to a first-order temporal query.
///
/// For a closed query only `boolean` is meaningful. For an open query each
/// row is a satisfying assignment of the free variables; temporal values are
/// *representative* terms, and together with the specification's rewrite
/// rule (`rewrite_lhs -> rewrite_lhs - rewrite_p`) each row finitely
/// represents the possibly infinitely many original answers (the paper's
/// `even(X)` example: `X = 0` plus `2 -> 0` represents 0, 2, 4, ...).
struct QueryAnswer {
  bool boolean = false;
  std::vector<std::string> free_var_names;
  std::vector<bool> free_var_temporal;
  std::vector<std::vector<QueryValue>> rows;
  /// Rewrite rule accompanying open answers; -1 when answered over a plain
  /// materialised model.
  int64_t rewrite_lhs = -1;
  int64_t rewrite_p = 0;

  std::string ToString(const Vocabulary& vocab) const;
};

/// Evaluates a query over a relational specification per Proposition 3.1:
/// temporal quantifiers (and free temporal variables) range over the
/// representative terms `T`, non-temporal ones over the active constants of
/// `B` plus the query's own constants; atoms are canonicalised by `W` and
/// looked up in `B`; negation is closed-world.
Result<QueryAnswer> EvaluateQueryOverSpec(
    const Query& query, const RelationalSpecification& spec,
    const QueryEvalOptions& options = {});

/// Reference evaluator over an explicitly materialised segment of the least
/// model: temporal quantifiers range over `[0...temporal_horizon]`. Used to
/// validate invariance (Proposition 3.1) in tests and benchmarks; for
/// queries whose quantifiers "stabilise" within the horizon this equals the
/// infinite-model semantics.
Result<QueryAnswer> EvaluateQueryOverModel(const Query& query,
                                           const Interpretation& model,
                                           int64_t temporal_horizon);

}  // namespace chronolog

#endif  // CHRONOLOG_QUERY_QUERY_EVAL_H_
