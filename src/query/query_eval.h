#ifndef CHRONOLOG_QUERY_QUERY_EVAL_H_
#define CHRONOLOG_QUERY_QUERY_EVAL_H_

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "query/query_ast.h"
#include "spec/specification.h"
#include "storage/interpretation.h"
#include "util/result.h"

namespace chronolog {

class MetricsRegistry;
class TraceBuffer;

/// Observability sinks for query evaluation (chronolog_obs; both nullable,
/// wired by the engine when `EngineOptions::collect_metrics` is set).
/// Instruments live under the `query.*` family:
///
///   query.evaluations   counter    evaluations started
///   query.latency_ns    histogram  wall time per evaluation
///   query.answers       histogram  rows per open query (0/1 for closed)
///   query.oracle_lookups counter   ground-atom lookups against `B`
///   query.rewrite_steps counter    W-rule applications folded by
///                                  canonicalisation during those lookups
///   query.deadline_exceeded counter  evaluations stopped by `deadline`
///   query.rows_truncated counter     evaluations stopped by `max_rows`
struct QueryEvalOptions {
  MetricsRegistry* metrics = nullptr;
  TraceBuffer* trace = nullptr;
  /// Wall-clock cut-off for this evaluation. The check sits inside the
  /// oracle-lookup loop (amortised: one clock read every 64 lookups), so a
  /// runaway query stops mid-evaluation; the answer then carries
  /// `QueryAnswer::partial` and holds only the rows completed before the
  /// deadline. Unset = unlimited.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Row cap for open queries: enumeration stops once this many satisfying
  /// assignments have been collected and the answer carries
  /// `QueryAnswer::truncated`. 0 = unlimited.
  uint64_t max_rows = 0;
  /// Request id for per-request observability (chronolog_qstats): when set
  /// (and `trace` is non-null), the evaluation runs inside a TraceScope so
  /// its spans can be sliced out of the shared buffer by request id
  /// (`GET /trace?request=ID`). Empty = unscoped.
  std::string request_id;
};

/// Caller-facing limit knobs (the serving layer's per-query budget; see
/// docs/SERVING.md). Converted into `QueryEvalOptions::deadline`/`max_rows`
/// by `TemporalDatabase::Query` and the `POST /query` endpoint.
struct QueryLimits {
  /// Wall-clock budget; zero (the default) = unlimited.
  std::chrono::milliseconds timeout{0};
  /// Row cap for open queries; 0 = unlimited.
  uint64_t max_rows = 0;
};

/// One value of a query answer: a ground temporal term (representative) or a
/// database constant.
struct QueryValue {
  bool temporal = false;
  int64_t time = 0;       // meaningful when temporal
  SymbolId constant = 0;  // meaningful when !temporal

  friend bool operator==(const QueryValue& a, const QueryValue& b) {
    return a.temporal == b.temporal &&
           (a.temporal ? a.time == b.time : a.constant == b.constant);
  }
};

/// Answer to a first-order temporal query.
///
/// For a closed query only `boolean` is meaningful. For an open query each
/// row is a satisfying assignment of the free variables; temporal values are
/// *representative* terms, and together with the specification's rewrite
/// rule (`rewrite_lhs -> rewrite_lhs - rewrite_p`) each row finitely
/// represents the possibly infinitely many original answers (the paper's
/// `even(X)` example: `X = 0` plus `2 -> 0` represents 0, 2, 4, ...).
struct QueryAnswer {
  bool boolean = false;
  std::vector<std::string> free_var_names;
  std::vector<bool> free_var_temporal;
  std::vector<std::vector<QueryValue>> rows;
  /// Rewrite rule accompanying open answers; -1 when answered over a plain
  /// materialised model.
  int64_t rewrite_lhs = -1;
  int64_t rewrite_p = 0;
  /// The deadline fired mid-evaluation: `rows` is a correct prefix of the
  /// full answer set (every collected row satisfies the query) but possibly
  /// incomplete, and for a closed query `boolean` is unreliable (reported
  /// as false).
  bool partial = false;
  /// `max_rows` was reached: `rows` is exact but enumeration stopped, so
  /// further satisfying assignments may exist.
  bool truncated = false;
  /// Per-request cost accounting (chronolog_qstats): ground-atom lookups
  /// against `B` and `W`-rule applications folded by canonicalisation during
  /// this evaluation. Always counted (independent of `metrics`); the
  /// statement-statistics store and the slow-query log read these.
  uint64_t oracle_lookups = 0;
  uint64_t rewrite_steps = 0;

  std::string ToString(const Vocabulary& vocab) const;
};

/// Evaluates a query over a relational specification per Proposition 3.1:
/// temporal quantifiers (and free temporal variables) range over the
/// representative terms `T`, non-temporal ones over the active constants of
/// `B` plus the query's own constants; atoms are canonicalised by `W` and
/// looked up in `B`; negation is closed-world.
Result<QueryAnswer> EvaluateQueryOverSpec(
    const Query& query, const RelationalSpecification& spec,
    const QueryEvalOptions& options = {});

/// Reference evaluator over an explicitly materialised segment of the least
/// model: temporal quantifiers range over `[0...temporal_horizon]`. Used to
/// validate invariance (Proposition 3.1) in tests and benchmarks; for
/// queries whose quantifiers "stabilise" within the horizon this equals the
/// infinite-model semantics.
Result<QueryAnswer> EvaluateQueryOverModel(const Query& query,
                                           const Interpretation& model,
                                           int64_t temporal_horizon);

}  // namespace chronolog

#endif  // CHRONOLOG_QUERY_QUERY_EVAL_H_
