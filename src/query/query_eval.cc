#include "query/query_eval.h"

#include <algorithm>
#include <functional>
#include <set>

#include "util/metrics.h"
#include "util/trace.h"

namespace chronolog {

namespace {

/// Shared closed-formula evaluator, parameterised by the atom oracle and the
/// two quantification domains.
class Evaluator {
 public:
  Evaluator(const Query& query,
            std::function<bool(const GroundAtom&)> oracle,
            std::vector<int64_t> temporal_domain,
            std::vector<SymbolId> constant_domain, bool allow_equality)
      : query_(query),
        oracle_(std::move(oracle)),
        temporal_domain_(std::move(temporal_domain)),
        constant_domain_(std::move(constant_domain)),
        allow_equality_(allow_equality),
        values_(query.var_names.size()) {}

  const Status& error() const { return error_; }

  /// Binds a free variable before evaluation (row enumeration).
  void Bind(VarId v, QueryValue value) { values_[v] = value; }

  bool Eval(const QueryNode& node) {
    switch (node.kind) {
      case QueryKind::kAtom: {
        GroundAtom atom;
        atom.pred = node.atom.pred;
        if (node.atom.temporal()) {
          const TemporalTerm& tt = *node.atom.time;
          atom.time = tt.ground() ? tt.offset
                                  : values_[tt.var].time + tt.offset;
        }
        atom.args.reserve(node.atom.args.size());
        for (const NtTerm& t : node.atom.args) {
          atom.args.push_back(t.is_constant() ? t.id
                                              : values_[t.id].constant);
        }
        return oracle_(atom);
      }
      case QueryKind::kEqual: {
        if (!allow_equality_) {
          if (error_.ok()) {
            error_ = UnimplementedError(
                "equality is not invariant w.r.t. relational specifications "
                "(paper, Section 8): distinct ground terms can share a "
                "representative; evaluate equality queries against a "
                "materialised model instead");
          }
          return false;
        }
        return SideValue(node.eq_lhs) == SideValue(node.eq_rhs);
      }
      case QueryKind::kNot:
        return !Eval(*node.left);  // Closed World Assumption
      case QueryKind::kAnd:
        return Eval(*node.left) && Eval(*node.right);
      case QueryKind::kOr:
        return Eval(*node.left) || Eval(*node.right);
      case QueryKind::kExists:
      case QueryKind::kForall: {
        const bool exists = node.kind == QueryKind::kExists;
        if (query_.temporal_vars[node.var]) {
          for (int64_t t : temporal_domain_) {
            values_[node.var] = QueryValue{true, t, 0};
            if (Eval(*node.left) == exists) return exists;
          }
        } else {
          for (SymbolId c : constant_domain_) {
            values_[node.var] = QueryValue{false, 0, c};
            if (Eval(*node.left) == exists) return exists;
          }
        }
        return !exists;
      }
    }
    return false;
  }

  const std::vector<int64_t>& temporal_domain() const {
    return temporal_domain_;
  }
  const std::vector<SymbolId>& constant_domain() const {
    return constant_domain_;
  }

 private:
  QueryValue SideValue(const EqualitySide& side) {
    if (side.temporal) {
      int64_t t = side.time.ground()
                      ? side.time.offset
                      : values_[side.time.var].time + side.time.offset;
      return QueryValue{true, t, 0};
    }
    if (side.nt.is_constant()) return QueryValue{false, 0, side.nt.id};
    return values_[side.nt.id];
  }

  const Query& query_;
  std::function<bool(const GroundAtom&)> oracle_;
  std::vector<int64_t> temporal_domain_;
  std::vector<SymbolId> constant_domain_;
  bool allow_equality_;
  std::vector<QueryValue> values_;
  Status error_;
};

/// Active constants: every constant in the interpretation plus every
/// constant mentioned by the query.
std::vector<SymbolId> ActiveConstants(const Query& query,
                                      const Interpretation& interp) {
  std::set<SymbolId> constants;
  interp.ForEach([&](PredicateId, int64_t, const Tuple& args) {
    for (SymbolId c : args) constants.insert(c);
  });
  std::function<void(const QueryNode&)> walk = [&](const QueryNode& node) {
    if (node.kind == QueryKind::kAtom) {
      for (const NtTerm& t : node.atom.args) {
        if (t.is_constant()) constants.insert(t.id);
      }
      return;
    }
    if (node.left != nullptr) walk(*node.left);
    if (node.right != nullptr) walk(*node.right);
  };
  walk(*query.root);
  return {constants.begin(), constants.end()};
}

Result<QueryAnswer> Run(const Query& query, Evaluator evaluator,
                        int64_t rewrite_lhs, int64_t rewrite_p) {
  QueryAnswer answer;
  answer.rewrite_lhs = rewrite_lhs;
  answer.rewrite_p = rewrite_p;
  for (VarId v : query.free_vars) {
    answer.free_var_names.push_back(query.var_names[v]);
    answer.free_var_temporal.push_back(query.temporal_vars[v]);
  }
  if (query.closed()) {
    answer.boolean = evaluator.Eval(*query.root);
    if (!evaluator.error().ok()) return evaluator.error();
    return answer;
  }

  // Enumerate assignments of the free variables (product of the domains).
  std::vector<QueryValue> row(query.free_vars.size());
  std::function<void(std::size_t)> enumerate = [&](std::size_t i) {
    if (i == query.free_vars.size()) {
      if (evaluator.Eval(*query.root)) answer.rows.push_back(row);
      return;
    }
    VarId v = query.free_vars[i];
    if (query.temporal_vars[v]) {
      for (int64_t t : evaluator.temporal_domain()) {
        row[i] = QueryValue{true, t, 0};
        evaluator.Bind(v, row[i]);
        enumerate(i + 1);
      }
    } else {
      for (SymbolId c : evaluator.constant_domain()) {
        row[i] = QueryValue{false, 0, c};
        evaluator.Bind(v, row[i]);
        enumerate(i + 1);
      }
    }
  };
  enumerate(0);
  if (!evaluator.error().ok()) return evaluator.error();
  answer.boolean = !answer.rows.empty();
  return answer;
}

}  // namespace

std::string QueryAnswer::ToString(const Vocabulary& vocab) const {
  std::string out;
  if (free_var_names.empty()) {
    return boolean ? "yes" : "no";
  }
  if (rows.empty()) return "no answers";
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ", ";
      out += free_var_names[i] + " = ";
      out += row[i].temporal ? std::to_string(row[i].time)
                             : vocab.ConstantName(row[i].constant);
    }
    out += "\n";
  }
  if (rewrite_lhs >= 0) {
    out += "(with rewrite rule " + std::to_string(rewrite_lhs) + " -> " +
           std::to_string(rewrite_lhs - rewrite_p) +
           ": temporal answer t >= " + std::to_string(rewrite_lhs - rewrite_p) +
           " also stands for t + " + std::to_string(rewrite_p) + "k)\n";
  }
  return out;
}

Result<QueryAnswer> EvaluateQueryOverSpec(
    const Query& query, const RelationalSpecification& spec,
    const QueryEvalOptions& options) {
  // Instruments are fetched at entry (chronolog_obs convention: an
  // instrument still empty after a metered run flags dead instrumentation).
  Counter* evaluations = nullptr;
  Histogram* latency_hist = nullptr;
  Histogram* answers_hist = nullptr;
  Counter* lookups = nullptr;
  Counter* rewrite_steps = nullptr;
  if (options.metrics != nullptr) {
    evaluations = options.metrics->counter("query.evaluations");
    latency_hist = options.metrics->histogram("query.latency_ns");
    answers_hist = options.metrics->histogram("query.answers");
    lookups = options.metrics->counter("query.oracle_lookups");
    rewrite_steps = options.metrics->counter("query.rewrite_steps");
  }
  if (evaluations != nullptr) evaluations->Add();
  TraceSpan span(options.trace, "query.eval");
  PhaseTimer latency_timer(latency_hist != nullptr, nullptr, latency_hist);

  std::vector<int64_t> temporal_domain;
  temporal_domain.reserve(static_cast<std::size_t>(spec.num_representatives()));
  for (int64_t t = 0; t < spec.num_representatives(); ++t) {
    temporal_domain.push_back(t);
  }
  auto oracle = [&spec, lookups, rewrite_steps](const GroundAtom& atom) {
    if (lookups != nullptr) lookups->Add();
    if (rewrite_steps != nullptr &&
        spec.primary().vocab().predicate(atom.pred).is_temporal &&
        atom.time >= spec.rewrite_lhs()) {
      // Number of `lhs -> lhs - p` applications Canonicalize folds to bring
      // `t` below the rewrite threshold.
      rewrite_steps->Add(static_cast<uint64_t>(
          (atom.time - spec.rewrite_lhs()) / spec.period().p + 1));
    }
    return spec.Ask(atom);
  };
  Evaluator evaluator(query, oracle, std::move(temporal_domain),
                      ActiveConstants(query, spec.primary()),
                      /*allow_equality=*/false);
  Result<QueryAnswer> answer = Run(query, std::move(evaluator),
                                   spec.rewrite_lhs(), spec.period().p);
  if (answers_hist != nullptr && answer.ok()) {
    answers_hist->RecordValue(answer->free_var_names.empty()
                                  ? (answer->boolean ? 1 : 0)
                                  : answer->rows.size());
  }
  return answer;
}

Result<QueryAnswer> EvaluateQueryOverModel(const Query& query,
                                           const Interpretation& model,
                                           int64_t temporal_horizon) {
  std::vector<int64_t> temporal_domain;
  temporal_domain.reserve(static_cast<std::size_t>(temporal_horizon) + 1);
  for (int64_t t = 0; t <= temporal_horizon; ++t) {
    temporal_domain.push_back(t);
  }
  Evaluator evaluator(
      query, [&model](const GroundAtom& atom) { return model.Contains(atom); },
      std::move(temporal_domain), ActiveConstants(query, model),
      /*allow_equality=*/true);
  return Run(query, std::move(evaluator), /*rewrite_lhs=*/-1, /*rewrite_p=*/0);
}

}  // namespace chronolog
