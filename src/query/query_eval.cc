#include "query/query_eval.h"

#include <algorithm>
#include <functional>
#include <set>

#include "util/metrics.h"
#include "util/trace.h"

namespace chronolog {

namespace {

/// Shared closed-formula evaluator, parameterised by the atom oracle and the
/// two quantification domains.
class Evaluator {
 public:
  Evaluator(const Query& query,
            std::function<bool(const GroundAtom&)> oracle,
            std::vector<int64_t> temporal_domain,
            std::vector<SymbolId> constant_domain, bool allow_equality,
            std::optional<std::chrono::steady_clock::time_point> deadline =
                std::nullopt)
      : query_(query),
        oracle_(std::move(oracle)),
        temporal_domain_(std::move(temporal_domain)),
        constant_domain_(std::move(constant_domain)),
        allow_equality_(allow_equality),
        deadline_(deadline),
        values_(query.var_names.size()) {}

  const Status& error() const { return error_; }

  /// The deadline fired: evaluation results since then are meaningless
  /// (every atom reports false) and enumeration must stop.
  bool aborted() const { return aborted_; }

  /// Binds a free variable before evaluation (row enumeration).
  void Bind(VarId v, QueryValue value) { values_[v] = value; }

  bool Eval(const QueryNode& node) {
    switch (node.kind) {
      case QueryKind::kAtom: {
        // Deadline enforcement lives here, in the oracle-lookup loop: every
        // connective and quantifier bottoms out in atoms, so an amortised
        // clock check per lookup bounds how far past the deadline a runaway
        // query can run. Once `aborted_`, atoms answer false immediately and
        // the quantifier loops below bail out.
        if (deadline_.has_value() && !aborted_ &&
            (++lookup_ticks_ & 0x3F) == 0 &&
            std::chrono::steady_clock::now() >= *deadline_) {
          aborted_ = true;
        }
        if (aborted_) return false;
        GroundAtom atom;
        atom.pred = node.atom.pred;
        if (node.atom.temporal()) {
          const TemporalTerm& tt = *node.atom.time;
          atom.time = tt.ground() ? tt.offset
                                  : values_[tt.var].time + tt.offset;
        }
        atom.args.reserve(node.atom.args.size());
        for (const NtTerm& t : node.atom.args) {
          atom.args.push_back(t.is_constant() ? t.id
                                              : values_[t.id].constant);
        }
        return oracle_(atom);
      }
      case QueryKind::kEqual: {
        if (!allow_equality_) {
          if (error_.ok()) {
            error_ = UnimplementedError(
                "equality is not invariant w.r.t. relational specifications "
                "(paper, Section 8): distinct ground terms can share a "
                "representative; evaluate equality queries against a "
                "materialised model instead");
          }
          return false;
        }
        return SideValue(node.eq_lhs) == SideValue(node.eq_rhs);
      }
      case QueryKind::kNot:
        return !Eval(*node.left);  // Closed World Assumption
      case QueryKind::kAnd:
        return Eval(*node.left) && Eval(*node.right);
      case QueryKind::kOr:
        return Eval(*node.left) || Eval(*node.right);
      case QueryKind::kExists:
      case QueryKind::kForall: {
        const bool exists = node.kind == QueryKind::kExists;
        if (query_.temporal_vars[node.var]) {
          for (int64_t t : temporal_domain_) {
            values_[node.var] = QueryValue{true, t, 0};
            if (Eval(*node.left) == exists) return exists;
            if (aborted_) return false;
          }
        } else {
          for (SymbolId c : constant_domain_) {
            values_[node.var] = QueryValue{false, 0, c};
            if (Eval(*node.left) == exists) return exists;
            if (aborted_) return false;
          }
        }
        return !exists;
      }
    }
    return false;
  }

  const std::vector<int64_t>& temporal_domain() const {
    return temporal_domain_;
  }
  const std::vector<SymbolId>& constant_domain() const {
    return constant_domain_;
  }

 private:
  QueryValue SideValue(const EqualitySide& side) {
    if (side.temporal) {
      int64_t t = side.time.ground()
                      ? side.time.offset
                      : values_[side.time.var].time + side.time.offset;
      return QueryValue{true, t, 0};
    }
    if (side.nt.is_constant()) return QueryValue{false, 0, side.nt.id};
    return values_[side.nt.id];
  }

  const Query& query_;
  std::function<bool(const GroundAtom&)> oracle_;
  std::vector<int64_t> temporal_domain_;
  std::vector<SymbolId> constant_domain_;
  bool allow_equality_;
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  uint32_t lookup_ticks_ = 0;
  bool aborted_ = false;
  std::vector<QueryValue> values_;
  Status error_;
};

/// Active constants: every constant in the interpretation plus every
/// constant mentioned by the query.
std::vector<SymbolId> ActiveConstants(const Query& query,
                                      const Interpretation& interp) {
  std::set<SymbolId> constants;
  interp.ForEach([&](PredicateId, int64_t, const Tuple& args) {
    for (SymbolId c : args) constants.insert(c);
  });
  std::function<void(const QueryNode&)> walk = [&](const QueryNode& node) {
    if (node.kind == QueryKind::kAtom) {
      for (const NtTerm& t : node.atom.args) {
        if (t.is_constant()) constants.insert(t.id);
      }
      return;
    }
    if (node.left != nullptr) walk(*node.left);
    if (node.right != nullptr) walk(*node.right);
  };
  walk(*query.root);
  return {constants.begin(), constants.end()};
}

Result<QueryAnswer> Run(const Query& query, Evaluator evaluator,
                        int64_t rewrite_lhs, int64_t rewrite_p,
                        uint64_t max_rows = 0) {
  QueryAnswer answer;
  answer.rewrite_lhs = rewrite_lhs;
  answer.rewrite_p = rewrite_p;
  for (VarId v : query.free_vars) {
    answer.free_var_names.push_back(query.var_names[v]);
    answer.free_var_temporal.push_back(query.temporal_vars[v]);
  }
  if (query.closed()) {
    answer.boolean = evaluator.Eval(*query.root);
    if (!evaluator.error().ok()) return evaluator.error();
    if (evaluator.aborted()) {
      answer.boolean = false;
      answer.partial = true;
    }
    return answer;
  }

  // Enumerate assignments of the free variables (product of the domains).
  // `stop` short-circuits the recursion on a deadline abort or once the row
  // cap is reached — rows already collected stay valid either way.
  bool stop = false;
  std::vector<QueryValue> row(query.free_vars.size());
  std::function<void(std::size_t)> enumerate = [&](std::size_t i) {
    if (stop) return;
    if (i == query.free_vars.size()) {
      const bool satisfied = evaluator.Eval(*query.root);
      if (evaluator.aborted()) {
        stop = true;
        return;  // the in-flight row was cut short; discard it
      }
      if (satisfied) {
        answer.rows.push_back(row);
        if (max_rows != 0 && answer.rows.size() >= max_rows) {
          answer.truncated = true;
          stop = true;
        }
      }
      return;
    }
    VarId v = query.free_vars[i];
    if (query.temporal_vars[v]) {
      for (int64_t t : evaluator.temporal_domain()) {
        if (stop) return;
        row[i] = QueryValue{true, t, 0};
        evaluator.Bind(v, row[i]);
        enumerate(i + 1);
      }
    } else {
      for (SymbolId c : evaluator.constant_domain()) {
        if (stop) return;
        row[i] = QueryValue{false, 0, c};
        evaluator.Bind(v, row[i]);
        enumerate(i + 1);
      }
    }
  };
  enumerate(0);
  if (!evaluator.error().ok()) return evaluator.error();
  answer.partial = evaluator.aborted();
  answer.boolean = !answer.rows.empty();
  return answer;
}

}  // namespace

std::string QueryAnswer::ToString(const Vocabulary& vocab) const {
  std::string out;
  if (free_var_names.empty()) {
    return boolean ? "yes" : "no";
  }
  if (rows.empty()) return "no answers";
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ", ";
      out += free_var_names[i] + " = ";
      out += row[i].temporal ? std::to_string(row[i].time)
                             : vocab.ConstantName(row[i].constant);
    }
    out += "\n";
  }
  if (rewrite_lhs >= 0) {
    out += "(with rewrite rule " + std::to_string(rewrite_lhs) + " -> " +
           std::to_string(rewrite_lhs - rewrite_p) +
           ": temporal answer t >= " + std::to_string(rewrite_lhs - rewrite_p) +
           " also stands for t + " + std::to_string(rewrite_p) + "k)\n";
  }
  return out;
}

Result<QueryAnswer> EvaluateQueryOverSpec(
    const Query& query, const RelationalSpecification& spec,
    const QueryEvalOptions& options) {
  // Instruments are fetched at entry (chronolog_obs convention: an
  // instrument still empty after a metered run flags dead instrumentation).
  Counter* evaluations = nullptr;
  Histogram* latency_hist = nullptr;
  Histogram* answers_hist = nullptr;
  Counter* lookups = nullptr;
  Counter* rewrite_steps = nullptr;
  Counter* deadline_exceeded = nullptr;
  Counter* rows_truncated = nullptr;
  if (options.metrics != nullptr) {
    evaluations = options.metrics->counter("query.evaluations");
    latency_hist = options.metrics->histogram("query.latency_ns");
    answers_hist = options.metrics->histogram("query.answers");
    lookups = options.metrics->counter("query.oracle_lookups");
    rewrite_steps = options.metrics->counter("query.rewrite_steps");
    deadline_exceeded = options.metrics->counter("query.deadline_exceeded");
    rows_truncated = options.metrics->counter("query.rows_truncated");
  }
  if (evaluations != nullptr) evaluations->Add();
  // The request scope wraps the whole evaluation so every span it records
  // (query.eval and anything nested) is sliceable by request id.
  TraceScope scope(options.trace, options.request_id);
  TraceSpan span(options.trace, "query.eval");
  PhaseTimer latency_timer(latency_hist != nullptr, nullptr, latency_hist);

  std::vector<int64_t> temporal_domain;
  temporal_domain.reserve(static_cast<std::size_t>(spec.num_representatives()));
  for (int64_t t = 0; t < spec.num_representatives(); ++t) {
    temporal_domain.push_back(t);
  }
  // Per-request counters accumulate unconditionally (the statement store
  // and slow-query log consume them even when no registry is attached); the
  // global `query.*` counters ride along when metrics are on.
  uint64_t local_lookups = 0;
  uint64_t local_rewrites = 0;
  auto oracle = [&spec, &local_lookups, &local_rewrites, lookups,
                 rewrite_steps](const GroundAtom& atom) {
    ++local_lookups;
    if (lookups != nullptr) lookups->Add();
    if (spec.primary().vocab().predicate(atom.pred).is_temporal &&
        atom.time >= spec.rewrite_lhs()) {
      // Number of `lhs -> lhs - p` applications Canonicalize folds to bring
      // `t` below the rewrite threshold.
      const uint64_t steps = static_cast<uint64_t>(
          (atom.time - spec.rewrite_lhs()) / spec.period().p + 1);
      local_rewrites += steps;
      if (rewrite_steps != nullptr) rewrite_steps->Add(steps);
    }
    return spec.Ask(atom);
  };
  Evaluator evaluator(query, oracle, std::move(temporal_domain),
                      ActiveConstants(query, spec.primary()),
                      /*allow_equality=*/false, options.deadline);
  Result<QueryAnswer> answer = Run(query, std::move(evaluator),
                                   spec.rewrite_lhs(), spec.period().p,
                                   options.max_rows);
  if (answer.ok()) {
    answer->oracle_lookups = local_lookups;
    answer->rewrite_steps = local_rewrites;
    if (answers_hist != nullptr) {
      answers_hist->RecordValue(answer->free_var_names.empty()
                                    ? (answer->boolean ? 1 : 0)
                                    : answer->rows.size());
    }
    if (deadline_exceeded != nullptr && answer->partial) {
      deadline_exceeded->Add();
    }
    if (rows_truncated != nullptr && answer->truncated) rows_truncated->Add();
  }
  return answer;
}

Result<QueryAnswer> EvaluateQueryOverModel(const Query& query,
                                           const Interpretation& model,
                                           int64_t temporal_horizon) {
  std::vector<int64_t> temporal_domain;
  temporal_domain.reserve(static_cast<std::size_t>(temporal_horizon) + 1);
  for (int64_t t = 0; t <= temporal_horizon; ++t) {
    temporal_domain.push_back(t);
  }
  Evaluator evaluator(
      query, [&model](const GroundAtom& atom) { return model.Contains(atom); },
      std::move(temporal_domain), ActiveConstants(query, model),
      /*allow_equality=*/true);
  return Run(query, std::move(evaluator), /*rewrite_lhs=*/-1, /*rewrite_p=*/0);
}

}  // namespace chronolog
