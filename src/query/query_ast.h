#ifndef CHRONOLOG_QUERY_QUERY_AST_H_
#define CHRONOLOG_QUERY_QUERY_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "ast/atom.h"

namespace chronolog {

/// Node kinds of the first-order temporal query language (Section 3.1): a
/// temporal query is built from temporal and non-temporal atoms with the
/// standard connectives and two-sorted quantifiers (no equality — see the
/// Section 8 counterexample for why equality breaks invariance).
enum class QueryKind {
  kAtom,
  kNot,     // negation, evaluated under the Closed World Assumption
  kAnd,
  kOr,
  kExists,  // quantifies one variable (temporal or non-temporal sort)
  kForall,
  /// Term equality `s = t`. NOT part of the paper's temporal query language
  /// — Section 8 shows equality is not invariant w.r.t. relational
  /// specifications (distinct ground terms can share a representative) —
  /// so it is evaluable only against explicitly materialised models;
  /// EvaluateQueryOverSpec rejects it.
  kEqual,
};

/// One side of an equality: a term of either sort.
struct EqualitySide {
  bool temporal = false;
  TemporalTerm time;  // meaningful when temporal
  NtTerm nt;          // meaningful otherwise
};

/// One node of a query formula. Variables are query-local ids into the
/// owning Query's tables; quantifiers always introduce a fresh VarId, so
/// shadowing is resolved at parse time.
struct QueryNode {
  QueryKind kind = QueryKind::kAtom;
  Atom atom;                         // kAtom
  std::unique_ptr<QueryNode> left;   // kNot/kExists/kForall child; kAnd/kOr lhs
  std::unique_ptr<QueryNode> right;  // kAnd/kOr rhs
  VarId var = kNoVar;                // kExists/kForall
  EqualitySide eq_lhs;               // kEqual
  EqualitySide eq_rhs;               // kEqual
};

/// A parsed first-order temporal query `Q(x1, ..., xk)` with free variables
/// in `free_vars`. A query with no free variables is a yes-no query.
struct Query {
  std::unique_ptr<QueryNode> root;
  std::vector<std::string> var_names;  // indexed by VarId (free + bound)
  std::vector<bool> temporal_vars;     // sort per VarId
  std::vector<VarId> free_vars;        // in first-occurrence order

  bool closed() const { return free_vars.empty(); }
};

}  // namespace chronolog

#endif  // CHRONOLOG_QUERY_QUERY_AST_H_
