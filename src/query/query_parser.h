#ifndef CHRONOLOG_QUERY_QUERY_PARSER_H_
#define CHRONOLOG_QUERY_QUERY_PARSER_H_

#include <memory>
#include <string_view>

#include "ast/vocabulary.h"
#include "query/query_ast.h"
#include "util/result.h"

namespace chronolog {

/// Parses a first-order temporal query against an existing vocabulary
/// (every predicate must already be known; sorts come from the predicate
/// signatures).
///
/// Grammar (keywords and symbols interchangeable):
///
///   query  := disj
///   disj   := conj  { ("|" | "or") conj }
///   conj   := unary { ("&" | "," | "and") unary }
///   unary  := ("~" | "not") unary
///           | ("exists" | "forall") Var {"," Var} "(" query ")"
///           | "(" query ")"
///           | atom
///   atom   := ident [ "(" term {"," term} ")" ]
///
/// Examples:
///   plane(12, hunter)
///   exists T (plane(T, hunter) & ~winter(T))
///   forall T (even(T) | even(T+1))
///
/// Unquantified variables are the query's free variables; evaluating the
/// query returns their satisfying assignments (plus the specification's
/// rewrite rule, which finitely represents the infinitely many temporal
/// instantiations — Section 3.3).
Result<Query> ParseQuery(std::string_view source, const Vocabulary& vocab);

/// Parses a single ground atom such as `plane(12, hunter)`; convenience for
/// yes-no queries through RelationalSpecification::Ask and algorithm BT.
Result<GroundAtom> ParseGroundAtom(std::string_view source,
                                   const Vocabulary& vocab);

}  // namespace chronolog

#endif  // CHRONOLOG_QUERY_QUERY_PARSER_H_
