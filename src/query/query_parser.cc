#include "query/query_parser.h"

#include <unordered_map>
#include <vector>

#include "ast/lexer.h"

namespace chronolog {

namespace {

std::string At(const Token& tok) {
  return " at line " + std::to_string(tok.line) + ", column " +
         std::to_string(tok.column);
}

Status Unexpected(const Token& tok, std::string_view expected) {
  return InvalidArgumentError(
      "expected " + std::string(expected) + " but found " +
      std::string(TokenKindToString(tok.kind)) +
      (tok.text.empty() ? "" : " '" + tok.text + "'") + At(tok));
}

bool IsKeyword(const Token& tok, std::string_view kw) {
  return tok.kind == TokenKind::kIdent && tok.text == kw;
}

/// Recursive-descent query parser. Constants are interned on the fly (an
/// unknown constant simply never matches); predicates must pre-exist.
class QueryParserImpl {
 public:
  QueryParserImpl(const std::vector<Token>& tokens, const Vocabulary& vocab,
                  Query* query)
      : tokens_(tokens), vocab_(const_cast<Vocabulary&>(vocab)),
        query_(query) {}

  Result<std::unique_ptr<QueryNode>> ParseDisjunction() {
    CHRONOLOG_ASSIGN_OR_RETURN(auto left, ParseConjunction());
    while (Peek().kind == TokenKind::kPipe || IsKeyword(Peek(), "or")) {
      ++pos_;
      CHRONOLOG_ASSIGN_OR_RETURN(auto right, ParseConjunction());
      auto node = std::make_unique<QueryNode>();
      node->kind = QueryKind::kOr;
      node->left = std::move(left);
      node->right = std::move(right);
      left = std::move(node);
    }
    return left;
  }

  const Token& Peek() const { return tokens_[pos_]; }
  std::size_t pos() const { return pos_; }

 private:
  Result<std::unique_ptr<QueryNode>> ParseConjunction() {
    CHRONOLOG_ASSIGN_OR_RETURN(auto left, ParseUnary());
    while (Peek().kind == TokenKind::kAmp ||
           Peek().kind == TokenKind::kComma || IsKeyword(Peek(), "and")) {
      ++pos_;
      CHRONOLOG_ASSIGN_OR_RETURN(auto right, ParseUnary());
      auto node = std::make_unique<QueryNode>();
      node->kind = QueryKind::kAnd;
      node->left = std::move(left);
      node->right = std::move(right);
      left = std::move(node);
    }
    return left;
  }

  Result<std::unique_ptr<QueryNode>> ParseUnary() {
    const Token& tok = Peek();
    if (tok.kind == TokenKind::kTilde || IsKeyword(tok, "not")) {
      ++pos_;
      CHRONOLOG_ASSIGN_OR_RETURN(auto child, ParseUnary());
      auto node = std::make_unique<QueryNode>();
      node->kind = QueryKind::kNot;
      node->left = std::move(child);
      return node;
    }
    if (IsKeyword(tok, "exists") || IsKeyword(tok, "forall")) {
      QueryKind kind =
          IsKeyword(tok, "exists") ? QueryKind::kExists : QueryKind::kForall;
      ++pos_;
      // One or more comma-separated quantified variables.
      std::vector<VarId> vars;
      while (true) {
        if (Peek().kind != TokenKind::kVar) {
          return Unexpected(Peek(), "quantified variable");
        }
        VarId v = NewVar(Peek().text);
        scopes_.emplace_back(Peek().text, v);
        vars.push_back(v);
        ++pos_;
        if (Peek().kind == TokenKind::kComma) {
          ++pos_;
          continue;
        }
        break;
      }
      if (Peek().kind != TokenKind::kLParen) {
        return Unexpected(Peek(), "'(' after quantifier");
      }
      ++pos_;
      CHRONOLOG_ASSIGN_OR_RETURN(auto child, ParseDisjunction());
      if (Peek().kind != TokenKind::kRParen) {
        return Unexpected(Peek(), "')' closing quantifier scope");
      }
      ++pos_;
      for (std::size_t i = 0; i < vars.size(); ++i) scopes_.pop_back();
      // Innermost variable binds innermost: wrap right-to-left.
      std::unique_ptr<QueryNode> node = std::move(child);
      for (auto it = vars.rbegin(); it != vars.rend(); ++it) {
        auto q = std::make_unique<QueryNode>();
        q->kind = kind;
        q->var = *it;
        q->left = std::move(node);
        node = std::move(q);
      }
      return node;
    }
    if (tok.kind == TokenKind::kLParen) {
      ++pos_;
      CHRONOLOG_ASSIGN_OR_RETURN(auto node, ParseDisjunction());
      if (Peek().kind != TokenKind::kRParen) {
        return Unexpected(Peek(), "')'");
      }
      ++pos_;
      return node;
    }
    // Equality `s = t`: recognised by a term-led token, or an identifier
    // immediately followed by '='.
    if (tok.kind == TokenKind::kVar || tok.kind == TokenKind::kInt ||
        (tok.kind == TokenKind::kIdent &&
         tokens_[pos_ + 1].kind == TokenKind::kEq)) {
      return ParseEquality();
    }
    return ParseAtom();
  }

  Result<std::unique_ptr<QueryNode>> ParseEquality() {
    const Token& where = Peek();
    CHRONOLOG_ASSIGN_OR_RETURN(EqualitySide lhs, ParseEqualitySide());
    if (Peek().kind != TokenKind::kEq) {
      return Unexpected(Peek(), "'=' in equality");
    }
    ++pos_;
    CHRONOLOG_ASSIGN_OR_RETURN(EqualitySide rhs, ParseEqualitySide());
    CHRONOLOG_RETURN_IF_ERROR(ResolveEqualitySorts(&lhs, &rhs, where));
    auto node = std::make_unique<QueryNode>();
    node->kind = QueryKind::kEqual;
    node->eq_lhs = lhs;
    node->eq_rhs = rhs;
    return node;
  }

  /// Parses one side of an equality. A bare variable's sort may still be
  /// open here; ResolveEqualitySorts settles it.
  Result<EqualitySide> ParseEqualitySide() {
    const Token& tok = Peek();
    EqualitySide side;
    switch (tok.kind) {
      case TokenKind::kInt:
        side.temporal = true;
        side.time = TemporalTerm::Ground(static_cast<int64_t>(tok.int_value));
        ++pos_;
        return side;
      case TokenKind::kIdent:
        side.temporal = false;
        side.nt = NtTerm::Constant(vocab_.InternConstant(tok.text));
        ++pos_;
        return side;
      case TokenKind::kVar: {
        VarId v = LookupVar(tok.text);
        ++pos_;
        int64_t offset = 0;
        if (Peek().kind == TokenKind::kPlus) {
          ++pos_;
          if (Peek().kind != TokenKind::kInt) {
            return Unexpected(Peek(), "integer offset after '+'");
          }
          offset = static_cast<int64_t>(Peek().int_value);
          ++pos_;
        }
        if (offset > 0) {
          CHRONOLOG_RETURN_IF_ERROR(SetSort(v, /*temporal=*/true, tok));
        }
        if (sort_known_[v] && query_->temporal_vars[v]) {
          side.temporal = true;
          side.time = TemporalTerm::Var(v, offset);
        } else if (sort_known_[v]) {
          side.temporal = false;
          side.nt = NtTerm::Variable(v);
        } else {
          // Sort still open; settled by ResolveEqualitySorts.
          side.temporal = false;
          side.nt = NtTerm::Variable(v);
        }
        return side;
      }
      default:
        return Unexpected(tok, "a term in equality");
    }
  }

  Status ResolveEqualitySorts(EqualitySide* lhs, EqualitySide* rhs,
                              const Token& where) {
    auto is_open = [&](const EqualitySide& s) {
      return !s.temporal && s.nt.is_variable() && !sort_known_[s.nt.id];
    };
    auto settle = [&](EqualitySide* open, bool temporal) -> Status {
      VarId v = open->nt.id;
      CHRONOLOG_RETURN_IF_ERROR(SetSort(v, temporal, where));
      if (temporal) {
        open->temporal = true;
        open->time = TemporalTerm::Var(v, 0);
      }
      return Status::Ok();
    };
    bool lhs_open = is_open(*lhs);
    bool rhs_open = is_open(*rhs);
    if (lhs_open && rhs_open) {
      return InvalidArgumentError(
          "cannot infer the sort of equality '" + where.text +
          " = ...': neither side's sort is known; use the variable in an "
          "atom first");
    }
    if (lhs_open) CHRONOLOG_RETURN_IF_ERROR(settle(lhs, rhs->temporal));
    if (rhs_open) CHRONOLOG_RETURN_IF_ERROR(settle(rhs, lhs->temporal));
    if (lhs->temporal != rhs->temporal) {
      return InvalidArgumentError(
          "equality compares a temporal with a non-temporal term (line " +
          std::to_string(where.line) + ")");
    }
    return Status::Ok();
  }

  Result<std::unique_ptr<QueryNode>> ParseAtom() {
    const Token& name = Peek();
    if (name.kind != TokenKind::kIdent) {
      return Unexpected(name, "predicate name");
    }
    PredicateId pred = vocab_.FindPredicate(name.text);
    if (pred == kInvalidPredicate) {
      return NotFoundError("unknown predicate '" + name.text + "'" + At(name));
    }
    const PredicateInfo& info = vocab_.predicate(pred);
    ++pos_;

    auto node = std::make_unique<QueryNode>();
    node->kind = QueryKind::kAtom;
    node->atom.pred = pred;

    uint32_t written = 0;
    if (Peek().kind == TokenKind::kLParen) {
      ++pos_;
      while (true) {
        CHRONOLOG_RETURN_IF_ERROR(
            ParseTerm(info, written, &node->atom, name));
        ++written;
        if (Peek().kind == TokenKind::kComma) {
          ++pos_;
          continue;
        }
        break;
      }
      if (Peek().kind != TokenKind::kRParen) {
        return Unexpected(Peek(), "')'");
      }
      ++pos_;
    }
    if (written != info.written_arity()) {
      return InvalidArgumentError(
          "predicate '" + name.text + "' expects " +
          std::to_string(info.written_arity()) + " arguments, got " +
          std::to_string(written) + At(name));
    }
    return node;
  }

  Status ParseTerm(const PredicateInfo& info, uint32_t position, Atom* atom,
                   const Token& where) {
    const Token& tok = Peek();
    const bool temporal_position = info.is_temporal && position == 0;
    switch (tok.kind) {
      case TokenKind::kInt:
        if (!temporal_position) {
          return InvalidArgumentError(
              "integer in non-temporal argument position of '" + info.name +
              "'" + At(tok));
        }
        atom->time = TemporalTerm::Ground(static_cast<int64_t>(tok.int_value));
        ++pos_;
        return Status::Ok();
      case TokenKind::kIdent:
        if (temporal_position) {
          return InvalidArgumentError(
              "constant in temporal argument position of '" + info.name + "'" +
              At(tok));
        }
        atom->args.push_back(
            NtTerm::Constant(vocab_.InternConstant(tok.text)));
        ++pos_;
        return Status::Ok();
      case TokenKind::kVar: {
        VarId v = LookupVar(tok.text);
        ++pos_;
        int64_t offset = 0;
        if (Peek().kind == TokenKind::kPlus) {
          ++pos_;
          if (Peek().kind != TokenKind::kInt) {
            return Unexpected(Peek(), "integer offset after '+'");
          }
          offset = static_cast<int64_t>(Peek().int_value);
          ++pos_;
        }
        if (temporal_position || offset > 0) {
          if (!temporal_position) {
            return InvalidArgumentError("temporal term in non-temporal "
                                        "argument position of '" + info.name +
                                        "'" + At(tok));
          }
          CHRONOLOG_RETURN_IF_ERROR(SetSort(v, /*temporal=*/true, tok));
          atom->time = TemporalTerm::Var(v, offset);
        } else {
          CHRONOLOG_RETURN_IF_ERROR(SetSort(v, /*temporal=*/false, tok));
          atom->args.push_back(NtTerm::Variable(v));
        }
        return Status::Ok();
      }
      default:
        return Unexpected(tok, "a term in '" + where.text + "'");
    }
  }

  VarId NewVar(const std::string& name) {
    VarId v = static_cast<VarId>(query_->var_names.size());
    query_->var_names.push_back(name);
    query_->temporal_vars.push_back(false);
    sort_known_.push_back(false);
    return v;
  }

  /// Innermost quantifier scope wins; otherwise the variable is free (one
  /// shared VarId per free name).
  VarId LookupVar(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->first == name) return it->second;
    }
    auto found = free_.find(name);
    if (found != free_.end()) return found->second;
    VarId v = NewVar(name);
    free_.emplace(name, v);
    query_->free_vars.push_back(v);
    return v;
  }

  Status SetSort(VarId v, bool temporal, const Token& tok) {
    if (!sort_known_[v]) {
      sort_known_[v] = true;
      query_->temporal_vars[v] = temporal;
      return Status::Ok();
    }
    if (query_->temporal_vars[v] != temporal) {
      return InvalidArgumentError(
          "variable '" + query_->var_names[v] +
          "' is used both as a temporal and as a non-temporal term" + At(tok));
    }
    return Status::Ok();
  }

  const std::vector<Token>& tokens_;
  Vocabulary& vocab_;
  Query* query_;
  std::size_t pos_ = 0;
  std::vector<std::pair<std::string, VarId>> scopes_;
  std::unordered_map<std::string, VarId> free_;
  std::vector<bool> sort_known_;
};

}  // namespace

Result<Query> ParseQuery(std::string_view source, const Vocabulary& vocab) {
  CHRONOLOG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Query query;
  QueryParserImpl impl(tokens, vocab, &query);
  CHRONOLOG_ASSIGN_OR_RETURN(query.root, impl.ParseDisjunction());
  const Token& end = impl.Peek();
  if (end.kind != TokenKind::kEof && end.kind != TokenKind::kDot) {
    return Unexpected(end, "end of query");
  }
  return query;
}

Result<GroundAtom> ParseGroundAtom(std::string_view source,
                                   const Vocabulary& vocab) {
  CHRONOLOG_ASSIGN_OR_RETURN(Query query, ParseQuery(source, vocab));
  if (query.root->kind != QueryKind::kAtom || !query.free_vars.empty()) {
    return InvalidArgumentError("expected a ground atom, got a general query: " +
                                std::string(source));
  }
  const Atom& atom = query.root->atom;
  GroundAtom ground;
  ground.pred = atom.pred;
  if (atom.temporal()) {
    if (!atom.time->ground()) {
      return InvalidArgumentError("expected a ground temporal argument in: " +
                                  std::string(source));
    }
    ground.time = atom.time->offset;
  }
  for (const NtTerm& t : atom.args) {
    if (!t.is_constant()) {
      return InvalidArgumentError("expected constants only in: " +
                                  std::string(source));
    }
    ground.args.push_back(t.id);
  }
  return ground;
}

}  // namespace chronolog
