#include "query/query_shape.h"

#include <vector>

#include "ast/lexer.h"

namespace chronolog {

namespace {

bool IsQueryKeyword(const Token& tok) {
  return tok.kind == TokenKind::kIdent &&
         (tok.text == "exists" || tok.text == "forall" || tok.text == "and" ||
          tok.text == "or" || tok.text == "not");
}

std::string TrimmedCopy(std::string_view text) {
  std::size_t begin = text.find_first_not_of(" \t\r\n");
  if (begin == std::string_view::npos) return "";
  std::size_t end = text.find_last_not_of(" \t\r\n");
  return std::string(text.substr(begin, end - begin + 1));
}

}  // namespace

std::string NormalizeQueryShape(std::string_view query_text) {
  Result<std::vector<Token>> tokens = Tokenize(query_text);
  if (!tokens.ok()) return TrimmedCopy(query_text);

  std::string out;
  out.reserve(query_text.size());
  char prev = '\0';            // last character appended, '\0' at the start
  bool prev_was_pred = false;  // predicate name — its '(' binds tight
  auto append = [&out, &prev, &prev_was_pred](std::string_view piece,
                                              bool is_pred = false) {
    if (piece.empty()) return;
    // Canonical spacing: tokens are space-separated except around tight
    // punctuation — nothing before ) , + or a predicate's argument-list (,
    // and nothing after ( ~ +.
    const char first = piece.front();
    const bool tight_left = first == ')' || first == ',' || first == '+' ||
                            (first == '(' && prev_was_pred);
    const bool tight_right = prev == '(' || prev == '~' || prev == '+';
    if (prev != '\0' && !tight_left && !tight_right) out += ' ';
    out += piece;
    prev = piece.back();
    prev_was_pred = is_pred;
  };

  const std::vector<Token>& toks = *tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    switch (tok.kind) {
      case TokenKind::kEof:
        break;
      case TokenKind::kInt:
        append("N");
        break;
      case TokenKind::kIdent: {
        // Keywords and predicate names (ident followed by '(') survive;
        // connective keywords canonicalise to their symbol spelling; every
        // other identifier is a constant and is stripped.
        if (tok.text == "and") {
          append(",");
        } else if (tok.text == "or") {
          append("|");
        } else if (tok.text == "not") {
          append("~");
        } else if (IsQueryKeyword(tok)) {
          append(tok.text);
        } else if (i + 1 < toks.size() &&
                   toks[i + 1].kind == TokenKind::kLParen) {
          append(tok.text, /*is_pred=*/true);
        } else {
          append("?");
        }
        break;
      }
      case TokenKind::kVar:
        append(tok.text);
        break;
      case TokenKind::kLParen:
        append("(");
        break;
      case TokenKind::kRParen:
        append(")");
        break;
      case TokenKind::kComma:
        append(",");
        break;
      case TokenKind::kDot:
        append(".");
        break;
      case TokenKind::kColonDash:
        append(":-");
        break;
      case TokenKind::kPlus:
        append("+");
        break;
      case TokenKind::kAt:
        append("@");
        break;
      case TokenKind::kSlash:
        append("/");
        break;
      case TokenKind::kAmp:
        append(",");  // conjunction: & and , are the same connective
        break;
      case TokenKind::kPipe:
        append("|");
        break;
      case TokenKind::kTilde:
        append("~");
        break;
      case TokenKind::kEq:
        append("=");
        break;
    }
  }
  // Comment-only or otherwise token-free text would make an empty (and
  // useless) aggregation key; fall back to the raw text like a lex failure.
  return out.empty() ? TrimmedCopy(query_text) : out;
}

}  // namespace chronolog
