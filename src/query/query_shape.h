#ifndef CHRONOLOG_QUERY_QUERY_SHAPE_H_
#define CHRONOLOG_QUERY_QUERY_SHAPE_H_

#include <string>
#include <string_view>

namespace chronolog {

/// Normalizes a query to its *shape* — the pg_stat_statements-style key of
/// the statement-statistics store (chronolog_qstats). Two queries share a
/// shape when they differ only in constants:
///
///   tok(3, a0)            -> tok(N, ?)
///   tok(17, a5)           -> tok(N, ?)
///   exists T (tok(T, a0)) -> exists T (tok(T, ?))
///
/// Concretely: the query is tokenized with the shared lexer, every integer
/// literal becomes `N` and every constant identifier becomes `?`; predicate
/// names, variables, quantifiers, connectives and parenthesisation are kept,
/// and spacing is canonicalised — so the shape is also insensitive to
/// whitespace and to the keyword/symbol spelling of connectives
/// (`and` vs `&` etc. are canonicalised to the symbols).
///
/// A query that fails to tokenize falls back to its whitespace-trimmed raw
/// text (such queries are rejected later by the parser anyway; the fallback
/// only keeps malformed inputs from aliasing each other onto one shape).
std::string NormalizeQueryShape(std::string_view query_text);

}  // namespace chronolog

#endif  // CHRONOLOG_QUERY_QUERY_SHAPE_H_
