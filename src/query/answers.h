#ifndef CHRONOLOG_QUERY_ANSWERS_H_
#define CHRONOLOG_QUERY_ANSWERS_H_

#include <cstdint>
#include <vector>

#include "query/query_eval.h"
#include "util/result.h"

namespace chronolog {

/// Unfolds the finite representation of an open-query answer into concrete
/// substitutions (Section 3.3: each representative substitution, together
/// with the rewrite rules, "represents possibly infinitely many original
/// answer substitutions").
///
/// By Proposition 3.1, `M |= Q(y...)` iff `B |= Q(r(y)...)`: each temporal
/// column unfolds *independently*. A temporal value below the rewrite
/// threshold `lhs - p` stands only for itself (aperiodic prefix); a value
/// in the cyclic range `[lhs - p, lhs)` stands for `t + k*p` for every
/// `k >= 0`. The unfolding of a row is the cartesian product of its
/// columns' expansions.
///
/// `max_time` bounds the unfolding (the full answer set may be infinite).
/// Rows are returned deduplicated and lexicographically sorted. For purely
/// non-temporal rows the unfolding is the row itself.
Result<std::vector<std::vector<QueryValue>>> UnfoldAnswers(
    const QueryAnswer& answer, int64_t max_time);

/// Renders `answer` as the chronolog_serve wire JSON (docs/SERVING.md):
///
///   {"boolean":true,
///    "free_vars":[{"name":"T","temporal":true}],
///    "rows":[[0],[2]],                 // numbers = temporal terms,
///                                      // strings = constants
///    "rewrite":{"lhs":4,"p":2},        // null over plain models
///    "partial":false,"truncated":false,
///    "rows_returned":2}
///
/// Temporal values are representative terms: together with "rewrite" each
/// row finitely represents the possibly infinite original answer set
/// (Section 3.3). No trailing newline.
std::string QueryAnswerToJson(const QueryAnswer& answer,
                              const Vocabulary& vocab);

}  // namespace chronolog

#endif  // CHRONOLOG_QUERY_ANSWERS_H_
