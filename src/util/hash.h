#ifndef CHRONOLOG_UTIL_HASH_H_
#define CHRONOLOG_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace chronolog {

/// Mixes `value` into `seed` (boost::hash_combine-style, with a 64-bit
/// golden-ratio constant). Order-sensitive.
inline void HashCombine(std::size_t& seed, std::size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

/// Hashes a contiguous range of integral values.
template <typename Int>
std::size_t HashRange(const Int* data, std::size_t n, std::size_t seed = 0) {
  for (std::size_t i = 0; i < n; ++i) {
    HashCombine(seed, static_cast<std::size_t>(data[i]));
  }
  return seed;
}

/// Hash functor for vectors of integral values (tuples of interned symbols).
struct VectorHash {
  template <typename Int>
  std::size_t operator()(const std::vector<Int>& v) const {
    return HashRange(v.data(), v.size(), v.size());
  }
};

}  // namespace chronolog

#endif  // CHRONOLOG_UTIL_HASH_H_
