#ifndef CHRONOLOG_UTIL_HASH_H_
#define CHRONOLOG_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace chronolog {

/// Mixes `value` into `seed` (boost::hash_combine-style, with a 64-bit
/// golden-ratio constant). Order-sensitive.
inline void HashCombine(std::size_t& seed, std::size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

/// Hashes a contiguous range of integral values.
template <typename Int>
std::size_t HashRange(const Int* data, std::size_t n, std::size_t seed = 0) {
  for (std::size_t i = 0; i < n; ++i) {
    HashCombine(seed, static_cast<std::size_t>(data[i]));
  }
  return seed;
}

/// Strong 64-bit finalizer (splitmix64). Used to decorrelate per-fact hashes
/// before they enter an order-independent (sum) combine: without finalization
/// the additive combine would let structured inputs cancel.
inline std::size_t Mix64(std::size_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Second, independent 64-bit finalizer (the murmur3 fmix64 constants, vs
/// splitmix64 above). `(Mix64(x), Mix64b(x))` behaves like a 128-bit hash of
/// `x` for collision purposes: the two finalizers share no multiplier, so an
/// additive-combine cancellation in one sum of finalized values does not
/// carry over to the other. Pairing them lets snapshot comparison treat
/// "both hashes agree" as near-certain equality before paying for an exact
/// check.
inline std::size_t Mix64b(std::size_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Hash functor for vectors of integral values (tuples of interned symbols).
struct VectorHash {
  template <typename Int>
  std::size_t operator()(const std::vector<Int>& v) const {
    return HashRange(v.data(), v.size(), v.size());
  }
};

}  // namespace chronolog

#endif  // CHRONOLOG_UTIL_HASH_H_
