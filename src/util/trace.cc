#include "util/trace.h"

#include <functional>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "util/string_util.h"

namespace chronolog {

namespace {

// Per-thread nesting depth. A thread-local (rather than per-buffer) counter
// is correct because a thread executes at most one buffer's spans at a time,
// and it keeps TraceSpan construction free of any shared state.
thread_local int tls_depth = 0;

// Scope id of the innermost live TraceScope on this thread (0 = none). Same
// thread-local reasoning as the depth counter: one buffer's request runs on
// one thread at a time.
thread_local uint64_t tls_scope = 0;

uint64_t ThreadId() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

uint64_t ToMicros(std::chrono::steady_clock::duration d) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(d).count());
}

}  // namespace

TraceBuffer::TraceBuffer(std::size_t capacity)
    : epoch_(std::chrono::steady_clock::now()), capacity_(capacity) {}

void TraceBuffer::Record(const char* name, int depth,
                         std::chrono::steady_clock::time_point start,
                         std::chrono::steady_clock::time_point end) {
  const uint64_t start_us = start <= epoch_ ? 0 : ToMicros(start - epoch_);
  const uint64_t dur_us = end <= start ? 0 : ToMicros(end - start);
  const uint64_t tid = ThreadId();
  const uint64_t scope = tls_scope;
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(TraceEvent{name, depth, start_us, dur_us, tid, scope});
}

uint64_t TraceBuffer::OpenScope(std::string_view request_id) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = ++next_scope_;
  scope_names_.emplace_back(id, std::string(request_id));
  if (scope_names_.size() > kMaxScopeNames) scope_names_.pop_front();
  return id;
}

std::size_t TraceBuffer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

uint64_t TraceBuffer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::vector<TraceEvent> TraceBuffer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void TraceBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_ = 0;
  scope_names_.clear();
}

std::string TraceBuffer::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"events\":[";
  bool first = true;
  for (const TraceEvent& e : events_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    out += e.name;
    out += "\",\"depth\":" + std::to_string(e.depth) +
           ",\"start_us\":" + std::to_string(e.start_us) +
           ",\"dur_us\":" + std::to_string(e.dur_us) +
           ",\"tid\":" + std::to_string(e.tid);
    if (e.scope != 0) out += ",\"scope\":" + std::to_string(e.scope);
    out += "}";
  }
  out += "],\"dropped\":" + std::to_string(dropped_) + "}";
  return out;
}

std::string TraceBuffer::ToChromeTraceJson(
    std::string_view request_filter) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Scope id → request id, resolved once per export; with a filter, the set
  // of scope ids belonging to the requested id (one request can open several
  // scopes, e.g. on retries with the same client-supplied id).
  std::unordered_map<uint64_t, const std::string*> scope_requests;
  std::unordered_set<uint64_t> wanted;
  for (const auto& [id, request] : scope_names_) {
    scope_requests.emplace(id, &request);
    if (!request_filter.empty() && request == request_filter) {
      wanted.insert(id);
    }
  }
  const bool filtered = !request_filter.empty();
  // Dense thread ids in first-seen order: Perfetto renders one track per
  // tid, and 64-bit hash values make unreadable track labels.
  std::unordered_map<uint64_t, uint64_t> tids;
  auto dense_tid = [&tids](uint64_t tid) {
    return tids.emplace(tid, tids.size() + 1).first->second;
  };
  std::string out =
      "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":" +
      std::to_string(dropped_);
  if (filtered) {
    out += ",\"request\":\"" + JsonEscape(request_filter) +
           "\",\"scopes\":" + std::to_string(wanted.size());
  }
  out += "},\"traceEvents\":[";
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"chronolog\"}}";
  for (const TraceEvent& e : events_) {
    if (filtered && wanted.count(e.scope) == 0) continue;
    out += ",{\"name\":\"";
    out += e.name;
    out += "\",\"cat\":\"chronolog\",\"ph\":\"X\",\"pid\":1,\"tid\":" +
           std::to_string(dense_tid(e.tid)) +
           ",\"ts\":" + std::to_string(e.start_us) +
           ",\"dur\":" + std::to_string(e.dur_us) +
           ",\"args\":{\"depth\":" + std::to_string(e.depth);
    if (e.scope != 0) {
      if (const auto it = scope_requests.find(e.scope);
          it != scope_requests.end()) {
        out += ",\"request\":\"" + JsonEscape(*it->second) + "\"";
      }
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

TraceSpan::TraceSpan(TraceBuffer* buffer, const char* name)
    : buffer_(buffer), name_(name) {
  if (buffer_ == nullptr) return;
  depth_ = tls_depth++;
  start_ = std::chrono::steady_clock::now();
}

TraceSpan::~TraceSpan() {
  if (buffer_ == nullptr) return;
  --tls_depth;
  buffer_->Record(name_, depth_, start_, std::chrono::steady_clock::now());
}

TraceScope::TraceScope(TraceBuffer* buffer, std::string_view request_id) {
  if (buffer == nullptr || request_id.empty()) return;
  id_ = buffer->OpenScope(request_id);
  prev_ = tls_scope;
  tls_scope = id_;
  active_ = true;
}

TraceScope::~TraceScope() {
  if (active_) tls_scope = prev_;
}

}  // namespace chronolog
