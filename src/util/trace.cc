#include "util/trace.h"

#include <functional>
#include <thread>
#include <unordered_map>

namespace chronolog {

namespace {

// Per-thread nesting depth. A thread-local (rather than per-buffer) counter
// is correct because a thread executes at most one buffer's spans at a time,
// and it keeps TraceSpan construction free of any shared state.
thread_local int tls_depth = 0;

uint64_t ThreadId() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

uint64_t ToMicros(std::chrono::steady_clock::duration d) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(d).count());
}

}  // namespace

TraceBuffer::TraceBuffer(std::size_t capacity)
    : epoch_(std::chrono::steady_clock::now()), capacity_(capacity) {}

void TraceBuffer::Record(const char* name, int depth,
                         std::chrono::steady_clock::time_point start,
                         std::chrono::steady_clock::time_point end) {
  const uint64_t start_us = start <= epoch_ ? 0 : ToMicros(start - epoch_);
  const uint64_t dur_us = end <= start ? 0 : ToMicros(end - start);
  const uint64_t tid = ThreadId();
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(TraceEvent{name, depth, start_us, dur_us, tid});
}

std::size_t TraceBuffer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

uint64_t TraceBuffer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::vector<TraceEvent> TraceBuffer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void TraceBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_ = 0;
}

std::string TraceBuffer::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"events\":[";
  bool first = true;
  for (const TraceEvent& e : events_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    out += e.name;
    out += "\",\"depth\":" + std::to_string(e.depth) +
           ",\"start_us\":" + std::to_string(e.start_us) +
           ",\"dur_us\":" + std::to_string(e.dur_us) +
           ",\"tid\":" + std::to_string(e.tid) + "}";
  }
  out += "],\"dropped\":" + std::to_string(dropped_) + "}";
  return out;
}

std::string TraceBuffer::ToChromeTraceJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Dense thread ids in first-seen order: Perfetto renders one track per
  // tid, and 64-bit hash values make unreadable track labels.
  std::unordered_map<uint64_t, uint64_t> tids;
  auto dense_tid = [&tids](uint64_t tid) {
    return tids.emplace(tid, tids.size() + 1).first->second;
  };
  std::string out =
      "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":" +
      std::to_string(dropped_) + "},\"traceEvents\":[";
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"chronolog\"}}";
  for (const TraceEvent& e : events_) {
    out += ",{\"name\":\"";
    out += e.name;
    out += "\",\"cat\":\"chronolog\",\"ph\":\"X\",\"pid\":1,\"tid\":" +
           std::to_string(dense_tid(e.tid)) +
           ",\"ts\":" + std::to_string(e.start_us) +
           ",\"dur\":" + std::to_string(e.dur_us) +
           ",\"args\":{\"depth\":" + std::to_string(e.depth) + "}}";
  }
  out += "]}";
  return out;
}

TraceSpan::TraceSpan(TraceBuffer* buffer, const char* name)
    : buffer_(buffer), name_(name) {
  if (buffer_ == nullptr) return;
  depth_ = tls_depth++;
  start_ = std::chrono::steady_clock::now();
}

TraceSpan::~TraceSpan() {
  if (buffer_ == nullptr) return;
  --tls_depth;
  buffer_->Record(name_, depth_, start_, std::chrono::steady_clock::now());
}

}  // namespace chronolog
