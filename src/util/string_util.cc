#include "util/string_util.h"

#include <charconv>
#include <cmath>

namespace chronolog {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool IsAllDigits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

bool ParseUint64(std::string_view s, uint64_t* out) {
  if (!IsAllDigits(s)) return false;
  uint64_t value = 0;
  for (char c : s) {
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

std::string JsonEscape(std::string_view s) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatDouble(double v) {
  if (!std::isfinite(v)) return "0";
  // std::to_chars is locale-independent by specification and emits the
  // shortest representation that round-trips.
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc()) return "0";  // cannot happen with a 64-byte buffer
  return std::string(buf, end);
}

}  // namespace chronolog
