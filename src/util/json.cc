#include "util/json.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace chronolog {

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWs();
    JsonValue value;
    Status status = ParseValue(&value, 0);
    if (!status.ok()) return status;
    SkipWs();
    if (pos_ != text_.size()) return Error("trailing characters after value");
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return InvalidArgumentError("json: " + what + " at byte " +
                                std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string_value);
      case 't':
        if (text_.substr(pos_, 4) != "true") return Error("invalid literal");
        pos_ += 4;
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = true;
        return Status();
      case 'f':
        if (text_.substr(pos_, 5) != "false") return Error("invalid literal");
        pos_ += 5;
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = false;
        return Status();
      case 'n':
        if (text_.substr(pos_, 4) != "null") return Error("invalid literal");
        pos_ += 4;
        out->kind = JsonValue::Kind::kNull;
        return Status();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->kind = JsonValue::Kind::kObject;
    SkipWs();
    if (Consume('}')) return Status();
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      Status status = ParseString(&key);
      if (!status.ok()) return status;
      SkipWs();
      if (!Consume(':')) return Error("expected ':'");
      SkipWs();
      JsonValue value;
      status = ParseValue(&value, depth + 1);
      if (!status.ok()) return status;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return Status();
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->kind = JsonValue::Kind::kArray;
    SkipWs();
    if (Consume(']')) return Status();
    while (true) {
      SkipWs();
      JsonValue value;
      Status status = ParseValue(&value, depth + 1);
      if (!status.ok()) return status;
      out->array.push_back(std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return Status();
      return Error("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status();
      }
      if (c < 0x20) return Error("unescaped control character in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // '\'
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          uint32_t cp = 0;
          if (!ParseHex4(&cp)) return Error("invalid \\u escape");
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00-\uDFFF.
            uint32_t low = 0;
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("unpaired surrogate");
            }
            pos_ += 2;
            if (!ParseHex4(&low) || low < 0xDC00 || low > 0xDFFF) {
              return Error("unpaired surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  bool ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return false;
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return false;
      }
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (Consume('-')) {
      // fallthrough to digits
    }
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(
                                    text_[pos_]))) {
      return Error("invalid number");
    }
    // JSON forbids leading zeros ("01"); accept "0" and "0.x".
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(
                                      text_[pos_]))) {
        return Error("invalid number");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(
                                      text_[pos_]))) {
        return Error("invalid number");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string literal(text_.substr(start, pos_ - start));
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(literal.c_str(), nullptr);
    if (integral) {
      errno = 0;
      const long long v = std::strtoll(literal.c_str(), nullptr, 10);
      if (errno != ERANGE) {
        out->int_value = static_cast<int64_t>(v);
        out->is_integer = true;
      }
    }
    return Status();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace chronolog
