#include "util/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace chronolog {

namespace {

/// Formats a double as JSON-safe text: fixed notation with enough precision
/// for milliseconds-as-double, no inf/nan (clamped to 0 — instruments only
/// see finite values, this is belt and braces for the exporter).
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void AtomicMin(std::atomic<uint64_t>& slot, uint64_t value) {
  uint64_t cur = slot.load(std::memory_order_relaxed);
  while (value < cur &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<uint64_t>& slot, uint64_t value) {
  uint64_t cur = slot.load(std::memory_order_relaxed);
  while (value > cur &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

/// Prometheus metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*; the dotted
/// instrument paths map onto it by replacing every other character with '_'.
std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && name[0] >= '0' && name[0] <= '9') out += '_';
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

void AppendFamilyHeader(std::string& out, const std::string& prom_name,
                        const std::string& dotted, const char* type) {
  out += "# HELP " + prom_name + " chronolog instrument " + dotted + "\n";
  out += "# TYPE " + prom_name + " " + type + "\n";
}

}  // namespace

void Gauge::Set(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  last_ = value;
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  sum_ += value;
  ++count_;
}

double Gauge::last() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_;
}

double Gauge::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

double Gauge::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

double Gauge::mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0 : sum_ / static_cast<double>(count_);
}

uint64_t Gauge::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

void Histogram::RecordMs(double ms) {
  const double ns = ms * 1e6;
  RecordValue(ns <= 0 ? 0 : static_cast<uint64_t>(ns));
}

void Histogram::RecordValue(uint64_t value) {
  // Bucket = bit width of the value: 0 -> bucket 0, [2^(i-1), 2^i) -> i.
  const int bucket = value == 0 ? 0 : std::bit_width(value);
  buckets_[std::min(bucket, kNumBuckets - 1)].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  AtomicMin(min_, value);
  AtomicMax(max_, value);
}

uint64_t Histogram::min() const {
  return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
}

uint64_t Histogram::max() const {
  return max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  const uint64_t n = count();
  return n == 0 ? 0 : static_cast<double>(sum()) / static_cast<double>(n);
}

double Histogram::Quantile(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample, 1-based; q = 0 maps to the first sample.
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(q * n)));
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const uint64_t in_bucket = bucket(i);
    if (in_bucket == 0) continue;
    if (cumulative + in_bucket < rank) {
      cumulative += in_bucket;
      continue;
    }
    // The target sample is one of `in_bucket` values in [lower, upper);
    // interpolate linearly by its rank within the bucket, then clamp to the
    // exact observed extremes so p0/p100 are honest.
    const double lower = i == 0 ? 0 : std::ldexp(1.0, i - 1);
    const double upper = i == 0 ? 0 : std::ldexp(1.0, i);
    const double frac = static_cast<double>(rank - cumulative) /
                        static_cast<double>(in_bucket);
    const double est = lower + (upper - lower) * frac;
    return std::clamp(est, static_cast<double>(min()),
                      static_cast<double>(max()));
  }
  return static_cast<double>(max());
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

bool MetricsRegistry::has_histogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return histograms_.find(name) != histograms_.end();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + std::to_string(counter->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":{\"last\":" + JsonNumber(gauge->last()) +
           ",\"min\":" + JsonNumber(gauge->min()) +
           ",\"max\":" + JsonNumber(gauge->max()) +
           ",\"mean\":" + JsonNumber(gauge->mean()) +
           ",\"count\":" + std::to_string(gauge->count()) + "}";
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":{\"count\":" + std::to_string(hist->count()) +
           ",\"sum\":" + std::to_string(hist->sum()) +
           ",\"min\":" + std::to_string(hist->min()) +
           ",\"max\":" + std::to_string(hist->max()) +
           ",\"mean\":" + JsonNumber(hist->mean()) + ",\"buckets\":[";
    bool first_bucket = true;
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      const uint64_t n = hist->bucket(i);
      if (n == 0) continue;
      if (!first_bucket) out += ",";
      first_bucket = false;
      // Exclusive upper bound of bucket i is 2^i (bucket 0 holds zeros).
      const double le = i == 0 ? 0 : std::ldexp(1.0, i);
      out += "{\"le\":" + JsonNumber(le) + ",\"n\":" + std::to_string(n) + "}";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string MetricsRegistry::ToPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    const std::string prom = PrometheusName(name);
    AppendFamilyHeader(out, prom, name, "counter");
    out += prom + " " + std::to_string(counter->value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string prom = PrometheusName(name);
    AppendFamilyHeader(out, prom, name, "gauge");
    out += prom + " " + JsonNumber(gauge->last()) + "\n";
    const std::pair<const char*, double> variants[] = {
        {"_min", gauge->min()}, {"_max", gauge->max()}, {"_mean", gauge->mean()}};
    for (const auto& [suffix, value] : variants) {
      AppendFamilyHeader(out, prom + suffix, name, "gauge");
      out += prom + suffix + " " + JsonNumber(value) + "\n";
    }
  }
  for (const auto& [name, hist] : histograms_) {
    const std::string prom = PrometheusName(name);
    AppendFamilyHeader(out, prom, name, "histogram");
    // Cumulative buckets: bucket i holds values in [2^(i-1), 2^i), so the
    // running sum through bucket i is the count of samples < 2^i — emitted
    // under le="2^i" (instrument values are integers; only a sample exactly
    // at a power of two could straddle the inclusive/exclusive boundary).
    int highest = -1;
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      if (hist->bucket(i) > 0) highest = i;
    }
    uint64_t cumulative = 0;
    for (int i = 0; i <= highest; ++i) {
      cumulative += hist->bucket(i);
      const double le = i == 0 ? 0 : std::ldexp(1.0, i);
      out += prom + "_bucket{le=\"" + JsonNumber(le) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(hist->count()) +
           "\n";
    out += prom + "_sum " + std::to_string(hist->sum()) + "\n";
    out += prom + "_count " + std::to_string(hist->count()) + "\n";
    const std::pair<const char*, double> quantiles[] = {
        {"_p50", hist->Quantile(0.50)},
        {"_p90", hist->Quantile(0.90)},
        {"_p99", hist->Quantile(0.99)}};
    for (const auto& [suffix, value] : quantiles) {
      AppendFamilyHeader(out, prom + suffix, name, "gauge");
      out += prom + suffix + " " + JsonNumber(value) + "\n";
    }
  }
  return out;
}

}  // namespace chronolog
