#ifndef CHRONOLOG_UTIL_STATUS_H_
#define CHRONOLOG_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace chronolog {

/// Canonical error space, modelled after the usual database-engine status
/// vocabulary. `kOk` is the unique success code.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,   // malformed input (parse errors, bad parameters)
  kNotFound = 2,          // referenced entity does not exist
  kFailedPrecondition = 3,// operation not valid in the current engine state
  kOutOfRange = 4,        // numeric argument outside the permitted range
  kResourceExhausted = 5, // configured budget (time, fixpoint horizon) exceeded
  kUnimplemented = 6,     // feature intentionally not supported
  kInternal = 7,          // invariant violation: indicates a bug in chronolog
};

/// Returns a stable human-readable name for `code` ("OK", "INVALID_ARGUMENT",
/// ...).
std::string_view StatusCodeToString(StatusCode code);

/// A cheap, value-semantic success-or-error result used across every public
/// chronolog API. No exceptions cross library boundaries; fallible functions
/// return `Status` (or `Result<T>`, see result.h).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders as "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Convenience factories mirroring the canonical codes.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status ResourceExhaustedError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);

/// Propagates a non-OK status to the caller. Usable only in functions
/// returning `Status` or `Result<T>` (both construct from `Status`).
#define CHRONOLOG_RETURN_IF_ERROR(expr)                  \
  do {                                                   \
    ::chronolog::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                           \
  } while (false)

}  // namespace chronolog

#endif  // CHRONOLOG_UTIL_STATUS_H_
