#ifndef CHRONOLOG_UTIL_JSON_H_
#define CHRONOLOG_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/result.h"

namespace chronolog {

/// A parsed JSON value — the request side of the chronolog_serve wire
/// protocol (`POST /query`, docs/SERVING.md). Deliberately minimal: one
/// variant struct, no DOM mutation API, no serialiser (responses are built
/// with JsonEscape directly). Numbers keep both representations: integral
/// literals (no '.', 'e', or overflow) are exact in `int_value`, everything
/// is available as `double`.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0.0;
  int64_t int_value = 0;
  bool is_integer = false;  // int_value is exact (kNumber only)
  std::string string_value;
  std::vector<JsonValue> array;
  /// Members in source order; duplicate keys are kept (Find returns the
  /// first, matching common lenient-parser behaviour).
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// First member named `key`, or nullptr (also for non-objects).
  const JsonValue* Find(std::string_view key) const;
};

/// Parses strict JSON (RFC 8259): one top-level value, UTF-8, `\uXXXX`
/// escapes (surrogate pairs included), no trailing garbage, nesting capped
/// at 64 levels. Errors carry kInvalidArgument with a byte offset.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace chronolog

#endif  // CHRONOLOG_UTIL_JSON_H_
