#ifndef CHRONOLOG_UTIL_RESULT_H_
#define CHRONOLOG_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace chronolog {

/// `Result<T>` carries either a value of type `T` or a non-OK `Status`.
/// It is the uniform return type of fallible value-producing functions in
/// chronolog (the engine never throws across its public API).
///
/// Usage:
///
///   Result<Program> program = Parser::Parse(text);
///   if (!program.ok()) return program.status();
///   Use(program.value());
///
/// Inside functions that themselves return `Status` or `Result<U>`, the
/// `CHRONOLOG_ASSIGN_OR_RETURN` macro removes the boilerplate.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit on purpose so `return value;` works).
  Result(T value) : value_(std::move(value)) {}

  /// Constructs from an error status. `status` must not be OK: an OK status
  /// without a value is a programming error and is reported as kInternal.
  Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = InternalError("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }

  /// Returns the carried status; OK when a value is present.
  const Status& status() const { return status_; }

  /// Value accessors. Calling these when `!ok()` is a programming error.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present
};

/// Evaluates `rexpr` (a Result<T>); on error returns the status, otherwise
/// move-assigns the value into `lhs`. `lhs` may be a declaration:
///   CHRONOLOG_ASSIGN_OR_RETURN(auto program, Parser::Parse(text));
#define CHRONOLOG_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  CHRONOLOG_ASSIGN_OR_RETURN_IMPL_(                                 \
      CHRONOLOG_RESULT_CONCAT_(_chronolog_result_, __LINE__), lhs, rexpr)

#define CHRONOLOG_RESULT_CONCAT_INNER_(x, y) x##y
#define CHRONOLOG_RESULT_CONCAT_(x, y) CHRONOLOG_RESULT_CONCAT_INNER_(x, y)

#define CHRONOLOG_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                     \
  if (!tmp.ok()) return tmp.status();                     \
  lhs = std::move(tmp).value()

}  // namespace chronolog

#endif  // CHRONOLOG_UTIL_RESULT_H_
