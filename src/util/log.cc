#include "util/log.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "util/string_util.h"

namespace chronolog {

namespace {

/// Sink state. The mutex serialises both sink swaps and line emission so a
/// custom sink never observes interleaved lines or its own replacement
/// mid-call.
std::mutex g_sink_mu;
LogSink g_sink;  // null = stderr

std::atomic<int> g_level{-1};  // -1 = not yet initialised from the env

LogLevel InitLevelFromEnv() {
  const char* env = std::getenv("CHRONOLOG_LOG_LEVEL");
  if (env != nullptr) {
    if (auto parsed = ParseLogLevel(env); parsed.has_value()) return *parsed;
    std::fprintf(stderr,
                 "chronolog: ignoring invalid CHRONOLOG_LOG_LEVEL=%s "
                 "(want debug|info|warn|error|off)\n",
                 env);
  }
  return LogLevel::kWarn;
}

std::string NumberText(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::optional<LogLevel> ParseLogLevel(std::string_view text) {
  if (text == "debug") return LogLevel::kDebug;
  if (text == "info") return LogLevel::kInfo;
  if (text == "warn") return LogLevel::kWarn;
  if (text == "error") return LogLevel::kError;
  if (text == "off") return LogLevel::kOff;
  return std::nullopt;
}

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "off";
}

LogLevel GlobalLogLevel() {
  int level = g_level.load(std::memory_order_relaxed);
  if (level < 0) {
    level = static_cast<int>(InitLevelFromEnv());
    int expected = -1;
    // First caller wins; a concurrent SetGlobalLogLevel takes precedence.
    g_level.compare_exchange_strong(expected, level,
                                    std::memory_order_relaxed);
    level = g_level.load(std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(level);
}

void SetGlobalLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  g_sink = std::move(sink);
}

LogEvent::LogEvent(LogLevel level, std::string_view event)
    : LogEvent(level, event, GlobalLogLevel()) {}

LogEvent::LogEvent(LogLevel level, std::string_view event, LogLevel threshold)
    : enabled_(level >= threshold && level != LogLevel::kOff) {
  if (!enabled_) return;
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const int64_t ts_us =
      std::chrono::duration_cast<std::chrono::microseconds>(now).count();
  line_ = "{\"ts_us\":" + std::to_string(ts_us) + ",\"level\":\"";
  line_ += LogLevelName(level);
  line_ += "\",\"event\":\"" + JsonEscape(event) + "\"";
}

LogEvent& LogEvent::Str(std::string_view key, std::string_view value) {
  if (enabled_) {
    line_ += ",\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
  }
  return *this;
}

LogEvent& LogEvent::Int(std::string_view key, int64_t value) {
  if (enabled_) {
    line_ += ",\"" + JsonEscape(key) + "\":" + std::to_string(value);
  }
  return *this;
}

LogEvent& LogEvent::Uint(std::string_view key, uint64_t value) {
  if (enabled_) {
    line_ += ",\"" + JsonEscape(key) + "\":" + std::to_string(value);
  }
  return *this;
}

LogEvent& LogEvent::Num(std::string_view key, double value) {
  if (enabled_) {
    line_ += ",\"" + JsonEscape(key) + "\":" + NumberText(value);
  }
  return *this;
}

LogEvent& LogEvent::Bool(std::string_view key, bool value) {
  if (enabled_) {
    line_ += ",\"" + JsonEscape(key) + "\":" + (value ? "true" : "false");
  }
  return *this;
}

LogEvent::~LogEvent() {
  if (!enabled_) return;
  line_ += "}";
  std::lock_guard<std::mutex> lock(g_sink_mu);
  if (g_sink) {
    g_sink(line_);
  } else {
    std::fprintf(stderr, "%s\n", line_.c_str());
  }
}

}  // namespace chronolog
