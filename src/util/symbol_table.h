#ifndef CHRONOLOG_UTIL_SYMBOL_TABLE_H_
#define CHRONOLOG_UTIL_SYMBOL_TABLE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace chronolog {

/// Identifier of an interned string. Dense, starting at 0, stable for the
/// lifetime of the owning SymbolTable.
using SymbolId = uint32_t;

inline constexpr SymbolId kInvalidSymbol = static_cast<SymbolId>(-1);

/// Bidirectional string interner. All names in a temporal deductive database
/// (constants, predicate names, variable names) are interned once and
/// referred to by dense 32-bit ids, so tuples are plain integer vectors.
///
/// Not thread-safe; one table is owned per Vocabulary.
class SymbolTable {
 public:
  SymbolTable() = default;

  // Copyable (tables are small; copies are used to fork vocabularies).
  SymbolTable(const SymbolTable&) = default;
  SymbolTable& operator=(const SymbolTable&) = default;
  SymbolTable(SymbolTable&&) = default;
  SymbolTable& operator=(SymbolTable&&) = default;

  /// Returns the id of `name`, interning it if new.
  SymbolId Intern(std::string_view name);

  /// Returns the id of `name` or kInvalidSymbol when not interned.
  SymbolId Find(std::string_view name) const;

  /// Returns the string for `id`. `id` must have been produced by this table.
  const std::string& Name(SymbolId id) const;

  bool Contains(std::string_view name) const {
    return Find(name) != kInvalidSymbol;
  }

  std::size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, SymbolId> ids_;
};

}  // namespace chronolog

#endif  // CHRONOLOG_UTIL_SYMBOL_TABLE_H_
