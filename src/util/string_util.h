#ifndef CHRONOLOG_UTIL_STRING_UTIL_H_
#define CHRONOLOG_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace chronolog {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` consists solely of ASCII decimal digits (and is non-empty).
bool IsAllDigits(std::string_view s);

/// Parses a non-negative decimal integer; returns false on overflow or
/// malformed input.
bool ParseUint64(std::string_view s, uint64_t* out);

/// Escapes `s` for embedding in a JSON string literal (quotes, backslashes,
/// control characters). Does not add the surrounding quotes.
std::string JsonEscape(std::string_view s);

/// Renders `v` in shortest round-trip decimal form with `.` as the decimal
/// separator regardless of the process locale — safe to splice into JSON,
/// unlike std::to_string/printf, which honor LC_NUMERIC (a German locale
/// renders `0.5` as `0,5` and corrupts the document). Non-finite values
/// (which JSON cannot carry) render as "0".
std::string FormatDouble(double v);

}  // namespace chronolog

#endif  // CHRONOLOG_UTIL_STRING_UTIL_H_
