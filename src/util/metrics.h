#ifndef CHRONOLOG_UTIL_METRICS_H_
#define CHRONOLOG_UTIL_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace chronolog {

/// chronolog_obs — the engine-wide metrics layer. A `MetricsRegistry` is a
/// thread-safe, name-keyed store of three instrument kinds:
///
///  * `Counter`   — monotone event counts (relaxed atomic adds);
///  * `Gauge`     — point-in-time observations with last/min/max/mean
///                  tracking (one short lock per Set; writers are low-rate:
///                  once per round / probe);
///  * `Histogram` — log2-bucketed latency (or size) distributions with
///                  lock-free recording, built for the hot evaluation paths.
///
/// Every evaluator accepts a nullable `MetricsRegistry*` through its options
/// struct (`FixpointOptions::metrics` etc.); a null pointer disables all
/// collection at the cost of one branch per instrumentation site, which is
/// what keeps `EngineOptions::collect_metrics = false` near-zero overhead.
/// Instruments are created at the *entry* of each instrumented phase, not at
/// first record, so a registry whose histogram stays empty after a run is
/// evidence of dead instrumentation (bench/ci.sh fails on it).

class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time observations. Tracks the last value plus min/max/sum/count
/// so one gauge can answer "what was the worst and the typical imbalance".
class Gauge {
 public:
  void Set(double value);

  double last() const;
  double min() const;
  double max() const;
  double mean() const;  // 0 when never set
  uint64_t count() const;

 private:
  mutable std::mutex mu_;
  double last_ = 0;
  double min_ = 0;
  double max_ = 0;
  double sum_ = 0;
  uint64_t count_ = 0;
};

/// Log2-bucketed distribution. Samples are recorded in nanoseconds (or raw
/// units via RecordValue); bucket `i` holds samples whose bit width is `i`,
/// i.e. values in `[2^(i-1), 2^i)`, so 64 buckets cover the full uint64
/// range with ~2x relative resolution — the standard shape for latency
/// distributions spanning many orders of magnitude. Recording is a relaxed
/// atomic increment plus two CAS loops for min/max; safe from any thread.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  /// Records a duration given in milliseconds (converted to ns internally).
  void RecordMs(double ms);
  /// Records a raw non-negative value (e.g. a fact count or task count).
  void RecordValue(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t min() const;  // 0 when empty
  uint64_t max() const;
  double mean() const;  // 0 when empty

  /// Estimated q-quantile (q in [0, 1]) from the log2 buckets: finds the
  /// bucket holding the ceil(q * count)-th sample and interpolates linearly
  /// inside its [2^(i-1), 2^i) range, clamped to the observed min/max. The
  /// ~2x bucket resolution bounds the relative error at 2x — good enough
  /// for dashboards (p50/p90/p99 in the Prometheus export), not for SLA
  /// arithmetic. 0 when empty.
  double Quantile(double q) const;

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{~uint64_t{0}};
  std::atomic<uint64_t> max_{0};
};

/// Name-keyed instrument store. `counter`/`gauge`/`histogram` get-or-create
/// under a mutex and return stable pointers (instruments are never removed),
/// so callers hoist the lookup out of hot loops and then record lock-free.
/// Names are dotted paths, `subsystem.phase[_unit]`:
/// `fixpoint.derive_ms`, `period.doublings`, `forward.timestep_ns`.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  /// True when an instrument of that kind and name already exists.
  bool has_histogram(std::string_view name) const;

  /// Deterministic (name-sorted) JSON object:
  /// {"counters":{name:n,...},
  ///  "gauges":{name:{"last":..,"min":..,"max":..,"mean":..,"count":..},...},
  ///  "histograms":{name:{"count":..,"sum":..,"min":..,"max":..,"mean":..,
  ///                      "buckets":[{"le":2^i,"n":..},...]},...}}
  /// Histogram values are in the unit they were recorded in (ns for the
  /// `*_ns` timers, raw counts otherwise); bucket entries list only
  /// non-empty buckets, `le` being the bucket's exclusive upper bound.
  std::string ToJson() const;

  /// Prometheus text exposition (format version 0.0.4), served by
  /// `GET /metrics` (src/serve). Dotted instrument names are sanitised to
  /// the metric-name charset (`.` -> `_`); every metric keeps a `# HELP`
  /// line naming the original dotted instrument. Mapping:
  ///
  ///  * Counter    -> `counter` sample;
  ///  * Gauge      -> `gauge` sample of the last value, plus `_min`/`_max`/
  ///                  `_mean` gauge variants;
  ///  * Histogram  -> `histogram` family: cumulative `_bucket{le="2^i"}`
  ///                  samples (one per log2 bucket up to the highest
  ///                  non-empty one, then `le="+Inf"`), `_sum` and `_count`,
  ///                  plus derived `_p50`/`_p90`/`_p99` gauge variants
  ///                  (Quantile()) so dashboards don't reimplement the
  ///                  bucket-interpolation math.
  ///
  /// Deterministic (name-sorted), one trailing newline per line, so the
  /// output diffs cleanly between scrapes.
  std::string ToPrometheusText() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// RAII phase timer: on destruction (or Stop) adds the elapsed wall-clock
/// milliseconds to `field` (an `EvalStats` `*_ms` slot, may be null) and
/// records the same duration into `hist` (may be null). Construct with
/// `enabled = false` to skip the clock reads entirely — the evaluators use
/// this to keep sub-microsecond rounds free of clock overhead unless a
/// registry is attached.
class PhaseTimer {
 public:
  PhaseTimer(bool enabled, double* field, Histogram* hist)
      : field_(field), hist_(hist), enabled_(enabled) {
    if (enabled_) start_ = std::chrono::steady_clock::now();
  }
  ~PhaseTimer() { Stop(); }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  /// Idempotent early stop.
  void Stop() {
    if (!enabled_) return;
    enabled_ = false;
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
    if (field_ != nullptr) *field_ += ms;
    if (hist_ != nullptr) hist_->RecordMs(ms);
  }

 private:
  std::chrono::steady_clock::time_point start_;
  double* field_;
  Histogram* hist_;
  bool enabled_;
};

}  // namespace chronolog

#endif  // CHRONOLOG_UTIL_METRICS_H_
