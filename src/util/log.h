#ifndef CHRONOLOG_UTIL_LOG_H_
#define CHRONOLOG_UTIL_LOG_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace chronolog {

/// chronolog_serve — leveled structured logging. One log call emits one
/// JSON line (the "JSON-lines" schema documented in docs/OBSERVABILITY.md):
///
///   {"ts_us":1722873600123456,"level":"info","event":"engine.spec_build",
///    "period_b":0,"period_p":2,"representatives":3,"wall_ms":0.42}
///
/// `ts_us` is wall-clock microseconds since the Unix epoch; `event` is a
/// dotted path naming the site (same convention as the metric names). All
/// remaining keys are event-specific fields added through the builder.
///
/// The process-wide threshold defaults to `warn` and is initialised once
/// from $CHRONOLOG_LOG_LEVEL (`debug|info|warn|error|off`); engines can
/// override it per-instance via `EngineOptions::log_level`. Lines go to
/// stderr unless a sink is injected with `SetLogSink` (tests capture lines
/// that way; injection and emission are thread-safe).

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// "debug"|"info"|"warn"|"error"|"off" (case-sensitive); nullopt otherwise.
std::optional<LogLevel> ParseLogLevel(std::string_view text);
/// Inverse of ParseLogLevel ("off" for kOff).
std::string_view LogLevelName(LogLevel level);

/// The process-wide threshold: events below it are dropped. Initialised on
/// first use from $CHRONOLOG_LOG_LEVEL, defaulting to kWarn.
LogLevel GlobalLogLevel();
void SetGlobalLogLevel(LogLevel level);

/// Replaces the line sink (called once per emitted line, without a trailing
/// newline). A null sink restores the default stderr writer. The sink may
/// be invoked concurrently from any logging thread, but calls are
/// serialised by the logger's internal mutex.
using LogSink = std::function<void(std::string_view line)>;
void SetLogSink(LogSink sink);

/// Builder for one structured event; emits its JSON line on destruction.
/// When the event's level is below the threshold the builder is inert —
/// no allocation, no field formatting, no clock read.
class LogEvent {
 public:
  /// Threshold defaults to the process-wide level.
  LogEvent(LogLevel level, std::string_view event);
  /// Explicit threshold (e.g. an engine's `EngineOptions::log_level`).
  LogEvent(LogLevel level, std::string_view event, LogLevel threshold);
  ~LogEvent();

  LogEvent(const LogEvent&) = delete;
  LogEvent& operator=(const LogEvent&) = delete;

  LogEvent& Str(std::string_view key, std::string_view value);
  LogEvent& Int(std::string_view key, int64_t value);
  LogEvent& Uint(std::string_view key, uint64_t value);
  LogEvent& Num(std::string_view key, double value);
  LogEvent& Bool(std::string_view key, bool value);

 private:
  bool enabled_;
  std::string line_;
};

inline LogEvent LogDebug(std::string_view event) {
  return LogEvent(LogLevel::kDebug, event);
}
inline LogEvent LogInfo(std::string_view event) {
  return LogEvent(LogLevel::kInfo, event);
}
inline LogEvent LogWarn(std::string_view event) {
  return LogEvent(LogLevel::kWarn, event);
}
inline LogEvent LogError(std::string_view event) {
  return LogEvent(LogLevel::kError, event);
}

// JSON string escaping is shared with the rest of the tree — see
// chronolog::JsonEscape in util/string_util.h.

}  // namespace chronolog

#endif  // CHRONOLOG_UTIL_LOG_H_
