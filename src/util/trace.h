#ifndef CHRONOLOG_UTIL_TRACE_H_
#define CHRONOLOG_UTIL_TRACE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace chronolog {

/// chronolog_obs — the tracing half of the observability layer. A
/// `TraceBuffer` is a bounded per-run event log; `TraceSpan` is the RAII
/// scope that feeds it. Spans nest through a thread-local depth counter
/// (fixpoint → round → derive/merge; forward-simulate → timestep/detection;
/// period detector → doubling → extend/find/verify), so the exported JSON
/// reconstructs the call tree without any interning or global state.
///
/// All evaluators take a nullable `TraceBuffer*` next to their
/// `MetricsRegistry*`; a null buffer makes TraceSpan construction a single
/// pointer test. Span names must be string literals (the buffer stores the
/// pointer, not a copy).
///
/// Request slicing (chronolog_qstats): a `TraceScope` tags every span its
/// thread records while the scope is alive with a per-request id, and the
/// buffer remembers which request string that id belongs to. The exporter
/// can then slice one query's spans out of a buffer shared by thousands of
/// requests (`GET /trace?request=ID`).

/// One completed span. Times are microseconds relative to the buffer's
/// construction (its epoch), so traces from one run share a timeline.
struct TraceEvent {
  const char* name;
  int depth;          // nesting depth on the recording thread (0 = root)
  uint64_t start_us;  // offset from the buffer epoch
  uint64_t dur_us;
  uint64_t tid;    // hashed thread id — distinguishes pool workers
  uint64_t scope;  // TraceScope id the span ran under; 0 = unscoped
};

/// Bounded, mutex-guarded event log. Spans beyond `capacity` are counted in
/// `dropped()` instead of stored, which keeps long runs (10^5 fixpoint
/// rounds, 10^6 simulated timesteps) at a fixed memory ceiling while still
/// reporting that truncation happened.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity = 1 << 16);

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  void Record(const char* name, int depth,
              std::chrono::steady_clock::time_point start,
              std::chrono::steady_clock::time_point end);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  uint64_t dropped() const;
  void Clear();

  /// Registers a request id and returns the scope id (>= 1) spans recorded
  /// under it will carry. The id → request-id association is kept in a
  /// bounded FIFO (`kMaxScopeNames`); once evicted, a scope's spans survive
  /// but can no longer be sliced by request string. Prefer the TraceScope
  /// RAII wrapper over calling this directly.
  uint64_t OpenScope(std::string_view request_id);

  /// Snapshot of the recorded events, in completion order.
  std::vector<TraceEvent> events() const;

  /// {"events":[{"name":..,"depth":..,"start_us":..,"dur_us":..,"tid":..},
  ///            ...],"dropped":n}
  /// Events appear in completion order (inner spans before the scope that
  /// encloses them — the usual trace-log convention).
  std::string ToJson() const;

  /// Chrome trace-event format: every span becomes a complete ("ph":"X")
  /// event with `pid`/`tid`/`ts`/`dur` in microseconds, so the output opens
  /// directly in Perfetto (ui.perfetto.dev) or chrome://tracing. Hashed
  /// thread ids are remapped to small dense ints in first-seen order; the
  /// span's nesting depth rides along in `args.depth`, and spans recorded
  /// under a TraceScope carry the request id in `args.request`. A
  /// `process_name` metadata event labels the single process, and `dropped`
  /// spans are reported in the top-level `otherData` object.
  ///
  /// A non-empty `request_filter` keeps only the spans recorded under a
  /// scope opened for that request id (`GET /trace?request=ID`); the
  /// matched scope count is reported in `otherData.scopes`.
  std::string ToChromeTraceJson(std::string_view request_filter = {}) const;

 private:
  /// Bound on remembered scope-id → request-id associations.
  static constexpr std::size_t kMaxScopeNames = 1024;

  const std::chrono::steady_clock::time_point epoch_;
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  uint64_t dropped_ = 0;
  uint64_t next_scope_ = 0;
  std::deque<std::pair<uint64_t, std::string>> scope_names_;  // FIFO
};

/// RAII span: records [construction, destruction) into `buffer` under
/// `name`. A null buffer disables the span entirely (no clock reads).
class TraceSpan {
 public:
  TraceSpan(TraceBuffer* buffer, const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceBuffer* buffer_;
  const char* name_;
  int depth_;
  std::chrono::steady_clock::time_point start_;
};

/// RAII request scope: spans recorded by this thread while the scope is
/// alive are tagged with a fresh scope id registered for `request_id`, so
/// the exporter can slice them out later. Scopes nest (the previous scope is
/// restored on destruction); a null buffer or empty request id disables the
/// scope entirely. Thread-bound like TraceSpan's depth counter: spans from
/// pool workers spawned inside the scope are not tagged.
class TraceScope {
 public:
  TraceScope(TraceBuffer* buffer, std::string_view request_id);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  /// The registered scope id; 0 when the scope is disabled.
  uint64_t id() const { return id_; }

 private:
  uint64_t id_ = 0;
  uint64_t prev_ = 0;
  bool active_ = false;
};

}  // namespace chronolog

#endif  // CHRONOLOG_UTIL_TRACE_H_
