#ifndef CHRONOLOG_UTIL_TRACE_H_
#define CHRONOLOG_UTIL_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace chronolog {

/// chronolog_obs — the tracing half of the observability layer. A
/// `TraceBuffer` is a bounded per-run event log; `TraceSpan` is the RAII
/// scope that feeds it. Spans nest through a thread-local depth counter
/// (fixpoint → round → derive/merge; forward-simulate → timestep/detection;
/// period detector → doubling → extend/find/verify), so the exported JSON
/// reconstructs the call tree without any interning or global state.
///
/// All evaluators take a nullable `TraceBuffer*` next to their
/// `MetricsRegistry*`; a null buffer makes TraceSpan construction a single
/// pointer test. Span names must be string literals (the buffer stores the
/// pointer, not a copy).

/// One completed span. Times are microseconds relative to the buffer's
/// construction (its epoch), so traces from one run share a timeline.
struct TraceEvent {
  const char* name;
  int depth;          // nesting depth on the recording thread (0 = root)
  uint64_t start_us;  // offset from the buffer epoch
  uint64_t dur_us;
  uint64_t tid;  // hashed thread id — distinguishes pool workers
};

/// Bounded, mutex-guarded event log. Spans beyond `capacity` are counted in
/// `dropped()` instead of stored, which keeps long runs (10^5 fixpoint
/// rounds, 10^6 simulated timesteps) at a fixed memory ceiling while still
/// reporting that truncation happened.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity = 1 << 16);

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  void Record(const char* name, int depth,
              std::chrono::steady_clock::time_point start,
              std::chrono::steady_clock::time_point end);

  std::size_t size() const;
  uint64_t dropped() const;
  void Clear();

  /// Snapshot of the recorded events, in completion order.
  std::vector<TraceEvent> events() const;

  /// {"events":[{"name":..,"depth":..,"start_us":..,"dur_us":..,"tid":..},
  ///            ...],"dropped":n}
  /// Events appear in completion order (inner spans before the scope that
  /// encloses them — the usual trace-log convention).
  std::string ToJson() const;

  /// Chrome trace-event format: every span becomes a complete ("ph":"X")
  /// event with `pid`/`tid`/`ts`/`dur` in microseconds, so the output opens
  /// directly in Perfetto (ui.perfetto.dev) or chrome://tracing. Hashed
  /// thread ids are remapped to small dense ints in first-seen order; the
  /// span's nesting depth rides along in `args.depth`. A `process_name`
  /// metadata event labels the single process, and `dropped` spans are
  /// reported in the top-level `otherData` object.
  std::string ToChromeTraceJson() const;

 private:
  const std::chrono::steady_clock::time_point epoch_;
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  uint64_t dropped_ = 0;
};

/// RAII span: records [construction, destruction) into `buffer` under
/// `name`. A null buffer disables the span entirely (no clock reads).
class TraceSpan {
 public:
  TraceSpan(TraceBuffer* buffer, const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceBuffer* buffer_;
  const char* name_;
  int depth_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace chronolog

#endif  // CHRONOLOG_UTIL_TRACE_H_
