#ifndef CHRONOLOG_UTIL_THREAD_POOL_H_
#define CHRONOLOG_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace chronolog {

/// A fixed-size pool of worker threads for data-parallel loops. No work
/// stealing and no task queue beyond a shared index counter: callers hand the
/// pool one `fn(i)` at a time via ParallelFor and every worker (plus the
/// calling thread) claims indexes until the range is exhausted. This is all
/// the structure the semi-naive evaluator needs — each round is a flat list
/// of independent (rule, delta-position, shard) tasks followed by a barrier.
///
/// Built on std::thread only; no external dependencies.
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (the calling thread participates in
  /// every ParallelFor, so `num_threads` counts it). `num_threads <= 1`
  /// spawns nothing and ParallelFor degenerates to a sequential loop.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs `fn(i)` for every `i` in `[0, n)` across the pool and returns when
  /// all calls have completed (full barrier). `fn` must be safe to invoke
  /// concurrently from different threads for different `i`. Exceptions must
  /// not escape `fn`.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop();
  /// Claims indexes from the current job until none remain; returns the
  /// number of indexes this thread completed.
  void DrainCurrentJob();

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable job_ready_;
  std::condition_variable job_done_;
  const std::function<void(std::size_t)>* job_fn_ = nullptr;  // null = idle
  std::size_t job_size_ = 0;
  std::size_t job_next_ = 0;     // next unclaimed index
  std::size_t job_pending_ = 0;  // claimed but not yet finished
  uint64_t job_generation_ = 0;  // bumps per ParallelFor; wakes sleepers
  bool shutdown_ = false;
};

}  // namespace chronolog

#endif  // CHRONOLOG_UTIL_THREAD_POOL_H_
