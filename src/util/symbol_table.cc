#include "util/symbol_table.h"

#include <cassert>

namespace chronolog {

SymbolId SymbolTable::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

SymbolId SymbolTable::Find(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) return kInvalidSymbol;
  return it->second;
}

const std::string& SymbolTable::Name(SymbolId id) const {
  assert(id < names_.size());
  return names_[id];
}

}  // namespace chronolog
