#include "util/thread_pool.h"

namespace chronolog {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  job_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::DrainCurrentJob() {
  // Precondition: mu_ held. Claims one index at a time so that uneven task
  // costs balance naturally; releases the lock around the user function.
  while (job_next_ < job_size_) {
    std::size_t i = job_next_++;
    ++job_pending_;
    const std::function<void(std::size_t)>* fn = job_fn_;
    mu_.unlock();
    (*fn)(i);
    mu_.lock();
    --job_pending_;
  }
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t seen_generation = 0;
  while (true) {
    job_ready_.wait(lock, [&] {
      return shutdown_ || (job_fn_ != nullptr && job_generation_ != seen_generation);
    });
    if (shutdown_) return;
    seen_generation = job_generation_;
    DrainCurrentJob();
    if (job_pending_ == 0) job_done_.notify_all();
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (num_threads_ == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  job_fn_ = &fn;
  job_size_ = n;
  job_next_ = 0;
  job_pending_ = 0;
  ++job_generation_;
  job_ready_.notify_all();
  DrainCurrentJob();  // the calling thread participates
  job_done_.wait(lock, [&] { return job_next_ >= job_size_ && job_pending_ == 0; });
  job_fn_ = nullptr;
}

}  // namespace chronolog
