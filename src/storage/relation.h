#ifndef CHRONOLOG_STORAGE_RELATION_H_
#define CHRONOLOG_STORAGE_RELATION_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "storage/tuple.h"
#include "util/hash.h"
#include "util/symbol_table.h"

namespace chronolog {

/// Columnar, deduplicated set of same-arity tuples — the storage unit behind
/// every predicate (and, for temporal predicates, every snapshot cell) of an
/// Interpretation.
///
/// Layout: one flat `SymbolId` vector per column, rows identified by their
/// append order (`uint32_t` row ids, dense `[0, size())`). Deduplication and
/// membership run through a compact open-addressing table (swiss-table
/// style: one control byte per slot holding a 7-bit tag of the row hash,
/// probed eight slots at a time with SWAR word ops), whose slots store row
/// ids — so `Insert`/`Contains` touch one contiguous control array plus the
/// column vectors, never per-tuple heap nodes.
///
/// Rows are append-only: there is no erase, so row ids are stable for the
/// lifetime of the relation (truncation at the Interpretation level drops
/// whole Relations). The arity is fixed by the first insert; a
/// default-constructed relation accepts any arity once.
///
/// Thread-safety: concurrent readers are safe; any write requires exclusive
/// access. `DistinctInColumn` refreshes an internal statistics cache behind
/// its own mutex, so it is safe to call concurrently with itself and with
/// other readers — but, like every reader, not concurrently with `Insert`.
class Relation {
 public:
  Relation() = default;

  // The statistics mutex is neither copyable nor movable, so spell out the
  // value semantics: copies take the source's statistics lock (another
  // thread may be mid-refresh in `DistinctInColumn`); moves don't — moving
  // from an object while another thread uses it is already a race at the
  // caller's level, and locking here would cost `noexcept`.
  Relation(const Relation& other);
  Relation& operator=(const Relation& other);
  Relation(Relation&& other) noexcept;
  Relation& operator=(Relation&& other) noexcept;

  std::size_t size() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }
  std::size_t arity() const { return arity_; }

  /// Value of column `col` in row `row`. No bounds checks in release builds.
  SymbolId at(std::size_t row, std::size_t col) const {
    return cols_[col][row];
  }

  /// Inserts the tuple `data[0..n)`; returns true when it was new. `n` must
  /// equal the arity fixed by the first insert.
  bool Insert(const SymbolId* data, std::size_t n);
  bool Insert(const Tuple& tuple) { return Insert(tuple.data(), tuple.size()); }

  bool Contains(const SymbolId* data, std::size_t n) const;
  bool Contains(const Tuple& tuple) const {
    return Contains(tuple.data(), tuple.size());
  }

  /// Materialises row `row` as a Tuple (gathers across the columns).
  Tuple Row(std::size_t row) const;

  /// Gathers row `row` into `*out` (cleared first; capacity is reused, so a
  /// scratch tuple makes repeated enumeration allocation-free).
  void CopyRow(std::size_t row, Tuple* out) const;

  /// Set equality (row order is irrelevant).
  friend bool operator==(const Relation& a, const Relation& b);
  friend bool operator!=(const Relation& a, const Relation& b) {
    return !(a == b);
  }

  /// Estimated number of distinct values in column `col` (>= 1 when the
  /// relation is non-empty). Sampled over at most ~1k rows and cached; the
  /// cache refreshes once the relation doubles. Feeds the join planner's
  /// bound-column fan-out estimates. Safe to call from concurrent readers
  /// (the cache is guarded by its own mutex); see the note above.
  std::size_t DistinctInColumn(std::size_t col) const;

 private:
  static constexpr std::size_t kGroup = 8;
  static constexpr uint8_t kEmpty = 0x80;  // tags use only the low 7 bits

  static std::size_t RowHash(const SymbolId* data, std::size_t n) {
    return Mix64(HashRange(data, n, n));
  }
  std::size_t HashOfRow(std::size_t row) const;
  bool RowEqualsData(std::size_t row, const SymbolId* data,
                     std::size_t n) const;

  /// Core probe: returns the row id matching `data`, or `kNotFound` with
  /// `*insert_slot` set to the first free slot on the probe path.
  static constexpr uint32_t kNotFound = ~uint32_t{0};
  uint32_t FindRow(const SymbolId* data, std::size_t n, std::size_t hash,
                   std::size_t* insert_slot) const;

  void Grow();
  void PlaceRow(std::size_t row, std::size_t hash);
  void SetCtrl(std::size_t slot, uint8_t byte);

  std::vector<std::vector<SymbolId>> cols_;
  uint32_t num_rows_ = 0;
  uint32_t arity_ = 0;
  bool arity_set_ = false;

  // Open-addressing dedup table: `ctrl_` has `cap_ + kGroup - 1` bytes (the
  // tail mirrors the first kGroup-1 slots so unaligned 8-byte group loads
  // never wrap), `slots_` has `cap_` row ids. `cap_` is a power of two.
  std::vector<uint8_t> ctrl_;
  std::vector<uint32_t> slots_;
  std::size_t cap_ = 0;

  // Per-column distinct-count cache: (rows when sampled, estimate), guarded
  // by `distinct_mutex_` so concurrent `DistinctInColumn` calls (the
  // parallel evaluator's per-worker join planning) never race on the lazy
  // resize/refresh.
  mutable std::mutex distinct_mutex_;
  mutable std::vector<std::pair<uint32_t, uint32_t>> distinct_cache_;
};

}  // namespace chronolog

#endif  // CHRONOLOG_STORAGE_RELATION_H_
