#include "storage/state.h"

#include <algorithm>

namespace chronolog {

State State::FromInterpretation(const Interpretation& interp, int64_t t) {
  State state;
  const Vocabulary& vocab = interp.vocab();
  for (PredicateId pred : vocab.AllPredicates()) {
    if (!vocab.predicate(pred).is_temporal) continue;
    const Relation& rel = interp.Snapshot(pred, t);
    for (uint32_t row = 0; row < rel.size(); ++row) {
      state.facts_.emplace_back(pred, rel.Row(row));
    }
  }
  std::sort(state.facts_.begin(), state.facts_.end());
  return state;
}

std::size_t State::Hash() const {
  std::size_t hash = facts_.size();
  for (const auto& [pred, tuple] : facts_) hash += FactHash(pred, tuple);
  return hash;
}

std::size_t State::Hash2() const {
  std::size_t hash = facts_.size();
  for (const auto& [pred, tuple] : facts_) hash += FactHash2(pred, tuple);
  return hash;
}

std::vector<State> ExtractStates(const Interpretation& interp, int64_t from,
                                 int64_t to) {
  std::vector<State> states;
  states.reserve(static_cast<std::size_t>(std::max<int64_t>(0, to - from + 1)));
  for (int64_t t = from; t <= to; ++t) {
    states.push_back(State::FromInterpretation(interp, t));
  }
  return states;
}

StateWindow StateWindow::FromInterpretation(const Interpretation& interp,
                                            int64_t t, int64_t width) {
  StateWindow window;
  window.states_.reserve(static_cast<std::size_t>(width));
  for (int64_t i = 0; i < width; ++i) {
    window.states_.push_back(State::FromInterpretation(interp, t + i));
  }
  return window;
}

StateWindow StateWindow::FromStates(const std::vector<State>& states,
                                    std::size_t start, std::size_t width) {
  StateWindow window;
  window.states_.assign(states.begin() + start,
                        states.begin() + start + width);
  return window;
}

std::size_t StateWindow::Hash() const {
  std::size_t seed = states_.size();
  for (const State& s : states_) HashCombine(seed, s.Hash());
  return seed;
}

}  // namespace chronolog
