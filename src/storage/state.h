#ifndef CHRONOLOG_STORAGE_STATE_H_
#define CHRONOLOG_STORAGE_STATE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "storage/interpretation.h"

namespace chronolog {

/// The paper's *state* `M[t]` (Section 3.2): the result of projecting out the
/// temporal argument from the snapshot `M(t)` — a finite, function-free
/// database. States are the unit of periodicity detection: a model is
/// periodic with period `(b, p)` when `M[t] = M[t+p]` for all `t >= b + c`.
///
/// Stored canonically (sorted) so equality and hashing are cheap and order-
/// independent.
class State {
 public:
  State() = default;

  /// Extracts `M[t]` from an interpretation.
  static State FromInterpretation(const Interpretation& interp, int64_t t);

  bool empty() const { return facts_.empty(); }
  std::size_t size() const { return facts_.size(); }

  const std::vector<std::pair<PredicateId, Tuple>>& facts() const {
    return facts_;
  }

  /// Order-independent content hash: `size + Σ FactHash(pred, tuple)`. The
  /// combine is commutative so that `Interpretation::SnapshotHash(t)` can
  /// maintain the exact same value incrementally, one fact at a time, without
  /// ever materialising the state.
  std::size_t Hash() const;

  /// Companion hash under the second finalizer:
  /// `size + Σ FactHash2(pred, tuple)`. Mirrors
  /// `Interpretation::SnapshotHash2(t)` exactly as Hash mirrors SnapshotHash;
  /// the pair (Hash, Hash2) agreeing makes an undetected state collision
  /// require two simultaneous 64-bit coincidences.
  std::size_t Hash2() const;

  friend bool operator==(const State& a, const State& b) {
    return a.facts_ == b.facts_;
  }
  friend bool operator!=(const State& a, const State& b) { return !(a == b); }

 private:
  std::vector<std::pair<PredicateId, Tuple>> facts_;
};

struct StateHash {
  std::size_t operator()(const State& s) const { return s.Hash(); }
};

/// Materialises `M[from], ..., M[to]` from an interpretation. Detection no
/// longer needs eagerly extracted state vectors (it reads the incrementally
/// maintained snapshot hashes); this helper serves callers that still want
/// the explicit states, e.g. cross-checking tests.
std::vector<State> ExtractStates(const Interpretation& interp, int64_t from,
                                 int64_t to);

/// A window of `g` consecutive states `M[t], ..., M[t+g-1]`. For semi-normal
/// rules (look-back depth `g > 1`) the periodicity condition compares windows
/// rather than single states (Section 3.2).
class StateWindow {
 public:
  StateWindow() = default;

  /// Extracts the window `[t, t + width)` from an interpretation.
  static StateWindow FromInterpretation(const Interpretation& interp,
                                        int64_t t, int64_t width);

  /// Builds the window `[start, start + width)` from already-extracted
  /// states (`states[i]` must be `M[i]`).
  static StateWindow FromStates(const std::vector<State>& states,
                                std::size_t start, std::size_t width);

  std::size_t width() const { return states_.size(); }
  const State& state(std::size_t i) const { return states_[i]; }

  std::size_t Hash() const;

  friend bool operator==(const StateWindow& a, const StateWindow& b) {
    return a.states_ == b.states_;
  }

 private:
  std::vector<State> states_;
};

struct StateWindowHash {
  std::size_t operator()(const StateWindow& w) const { return w.Hash(); }
};

}  // namespace chronolog

#endif  // CHRONOLOG_STORAGE_STATE_H_
