#include "storage/interpretation.h"

#include <cassert>
#include <mutex>

namespace chronolog {

namespace {
const Relation kEmptyRelation;
const std::map<int64_t, Relation> kEmptyTimeline;
}  // namespace

Interpretation::Interpretation(std::shared_ptr<Vocabulary> vocab)
    : vocab_(std::move(vocab)) {
  assert(vocab_ != nullptr);
  non_temporal_.resize(vocab_->num_predicates());
  temporal_.resize(vocab_->num_predicates());
}

Interpretation::Interpretation(const Interpretation& other)
    : vocab_(other.vocab_),
      non_temporal_(other.non_temporal_),
      temporal_(other.temporal_),
      size_(other.size_),
      snapshot_hashes_(other.snapshot_hashes_),
      snapshot_hashing_(other.snapshot_hashing_) {}

Interpretation& Interpretation::operator=(const Interpretation& other) {
  if (this == &other) return *this;
  vocab_ = other.vocab_;
  non_temporal_ = other.non_temporal_;
  temporal_ = other.temporal_;
  size_ = other.size_;
  snapshot_hashes_ = other.snapshot_hashes_;
  snapshot_hashing_ = other.snapshot_hashing_;
  nt_index_.clear();
  t_index_.clear();
  return *this;
}

void Interpretation::EnsurePred(PredicateId pred) {
  // The vocabulary may have grown since construction (e.g. normalization
  // introduces predicates); grow lazily.
  if (pred >= non_temporal_.size()) {
    non_temporal_.resize(vocab_->num_predicates());
    temporal_.resize(vocab_->num_predicates());
  }
}

void Interpretation::IndexInsertedRow(PredicateId pred, bool temporal,
                                      int64_t time, const Relation& rel,
                                      uint32_t row) {
  if (temporal) {
    if (pred >= t_index_.size() || t_index_[pred].empty()) return;
    auto snapshot = t_index_[pred].find(time);
    if (snapshot == t_index_[pred].end()) return;
    for (auto& [col, index] : snapshot->second) {
      index.buckets[rel.at(row, col)].push_back(row);
    }
  } else {
    if (pred >= nt_index_.size() || nt_index_[pred].empty()) return;
    for (auto& [col, index] : nt_index_[pred]) {
      index.buckets[rel.at(row, col)].push_back(row);
    }
  }
}

void Interpretation::SetConcurrentProbes(bool enabled) {
  if (!enabled) {
    probe_mu_.reset();
    return;
  }
  // Pre-size the index vectors so probes never resize them concurrently.
  if (nt_index_.size() < non_temporal_.size()) {
    nt_index_.resize(non_temporal_.size());
  }
  if (t_index_.size() < temporal_.size()) t_index_.resize(temporal_.size());
  if (probe_mu_ == nullptr) {
    probe_mu_ = std::make_unique<std::shared_mutex>();
  }
}

bool Interpretation::Insert(const GroundAtom& fact) {
  return Insert(fact.pred, fact.time, fact.args.data(), fact.args.size());
}

bool Interpretation::Insert(PredicateId pred, int64_t time, const Tuple& args) {
  return Insert(pred, time, args.data(), args.size());
}

bool Interpretation::Insert(PredicateId pred, int64_t time,
                            const SymbolId* args, std::size_t n) {
  EnsurePred(pred);
  const bool temporal = vocab_->predicate(pred).is_temporal;
  Relation* rel;
  if (temporal) {
    assert(time >= 0);
    rel = &temporal_[pred][time];
  } else {
    rel = &non_temporal_[pred];
  }
  if (!rel->Insert(args, n)) return false;
  ++size_;
  if (temporal && snapshot_hashing_) {
    // `+ 1` carries the fact-count term of State::Hash / Hash2; both
    // families finalize the same inner hash, computed once.
    const std::size_t base = FactHashBase(pred, args, n);
    SnapshotHashPair& pair = snapshot_hashes_[time];
    pair.h1 += Mix64(base) + 1;
    pair.h2 += Mix64b(base) + 1;
  }
  IndexInsertedRow(pred, temporal, time, *rel,
                   static_cast<uint32_t>(rel->size() - 1));
  return true;
}

std::size_t Interpretation::SnapshotHash(int64_t time) const {
  assert(snapshot_hashing_);
  auto it = snapshot_hashes_.find(time);
  return it == snapshot_hashes_.end() ? 0 : it->second.h1;
}

std::size_t Interpretation::SnapshotHash2(int64_t time) const {
  assert(snapshot_hashing_);
  auto it = snapshot_hashes_.find(time);
  return it == snapshot_hashes_.end() ? 0 : it->second.h2;
}

bool Interpretation::SnapshotEquals(int64_t t1, int64_t t2) const {
  if (t1 == t2) return true;
  if (snapshot_hashing_) {
    auto i1 = snapshot_hashes_.find(t1);
    auto i2 = snapshot_hashes_.find(t2);
    const SnapshotHashPair a =
        i1 == snapshot_hashes_.end() ? SnapshotHashPair{} : i1->second;
    const SnapshotHashPair b =
        i2 == snapshot_hashes_.end() ? SnapshotHashPair{} : i2->second;
    if (a.h1 != b.h1 || a.h2 != b.h2) return false;
  }
  for (const auto& timeline : temporal_) {
    auto i1 = timeline.find(t1);
    auto i2 = timeline.find(t2);
    const Relation& a = i1 == timeline.end() ? kEmptyRelation : i1->second;
    const Relation& b = i2 == timeline.end() ? kEmptyRelation : i2->second;
    if (a != b) return false;
  }
  return true;
}

void Interpretation::DisableSnapshotHashing() {
  snapshot_hashing_ = false;
  snapshot_hashes_.clear();
}

const std::vector<uint32_t>* Interpretation::FindBucket(
    const ColumnBuckets& index, const Relation& rel, SymbolId value) {
  auto bucket = index.buckets.find(value);
  if (bucket == index.buckets.end()) return nullptr;
#ifndef NDEBUG
  // Invalidation-contract check: every indexed row id must address a live
  // row of the relation the bucket was built over.
  for (uint32_t row : bucket->second) assert(row < rel.size());
#else
  (void)rel;
#endif
  return &bucket->second;
}

const std::vector<uint32_t>* Interpretation::ProbeNonTemporal(
    PredicateId pred, uint32_t col, SymbolId value) const {
  assert(!vocab_->predicate(pred).is_temporal);
  if (pred >= non_temporal_.size()) return nullptr;
  const Relation& rel = non_temporal_[pred];
  if (probe_mu_ != nullptr) {
    // Concurrent mode: optimistic shared-lock lookup, exclusive build.
    {
      std::shared_lock<std::shared_mutex> lock(*probe_mu_);
      auto it = nt_index_[pred].find(col);
      if (it != nt_index_[pred].end()) {
        return FindBucket(it->second, rel, value);
      }
    }
    std::unique_lock<std::shared_mutex> lock(*probe_mu_);
    auto [it, fresh] = nt_index_[pred].try_emplace(col);
    if (fresh) {
      for (uint32_t row = 0; row < rel.size(); ++row) {
        it->second.buckets[rel.at(row, col)].push_back(row);
      }
    }
    return FindBucket(it->second, rel, value);
  }
  if (nt_index_.size() < non_temporal_.size()) {
    nt_index_.resize(non_temporal_.size());
  }
  auto [it, fresh] = nt_index_[pred].try_emplace(col);
  ColumnBuckets& index = it->second;
  if (fresh) {
    for (uint32_t row = 0; row < rel.size(); ++row) {
      index.buckets[rel.at(row, col)].push_back(row);
    }
  }
  return FindBucket(index, rel, value);
}

const std::vector<uint32_t>* Interpretation::ProbeSnapshot(
    PredicateId pred, int64_t time, uint32_t col, SymbolId value) const {
  assert(vocab_->predicate(pred).is_temporal);
  if (pred >= temporal_.size()) return nullptr;
  auto cell = temporal_[pred].find(time);
  if (cell == temporal_[pred].end()) return nullptr;
  const Relation& rel = cell->second;
  if (probe_mu_ != nullptr) {
    {
      std::shared_lock<std::shared_mutex> lock(*probe_mu_);
      auto snapshot = t_index_[pred].find(time);
      if (snapshot != t_index_[pred].end()) {
        auto it = snapshot->second.find(col);
        if (it != snapshot->second.end()) {
          return FindBucket(it->second, rel, value);
        }
      }
    }
    std::unique_lock<std::shared_mutex> lock(*probe_mu_);
    auto [it, fresh] = t_index_[pred][time].try_emplace(col);
    if (fresh) {
      for (uint32_t row = 0; row < rel.size(); ++row) {
        it->second.buckets[rel.at(row, col)].push_back(row);
      }
    }
    return FindBucket(it->second, rel, value);
  }
  if (t_index_.size() < temporal_.size()) t_index_.resize(temporal_.size());
  auto [it, fresh] = t_index_[pred][time].try_emplace(col);
  ColumnBuckets& index = it->second;
  if (fresh) {
    for (uint32_t row = 0; row < rel.size(); ++row) {
      index.buckets[rel.at(row, col)].push_back(row);
    }
  }
  return FindBucket(index, rel, value);
}

void Interpretation::InsertDatabase(const Database& db) {
  for (const GroundAtom& f : db.facts()) Insert(f);
}

bool Interpretation::Contains(const GroundAtom& fact) const {
  return Contains(fact.pred, fact.time, fact.args);
}

bool Interpretation::Contains(PredicateId pred, int64_t time,
                              const Tuple& args) const {
  if (vocab_->predicate(pred).is_temporal) {
    if (pred >= temporal_.size()) return false;
    auto it = temporal_[pred].find(time);
    if (it == temporal_[pred].end()) return false;
    return it->second.Contains(args.data(), args.size());
  }
  if (pred >= non_temporal_.size()) return false;
  return non_temporal_[pred].Contains(args.data(), args.size());
}

const Relation& Interpretation::NonTemporal(PredicateId pred) const {
  assert(!vocab_->predicate(pred).is_temporal);
  if (pred >= non_temporal_.size()) return kEmptyRelation;
  return non_temporal_[pred];
}

const Relation& Interpretation::Snapshot(PredicateId pred,
                                         int64_t time) const {
  assert(vocab_->predicate(pred).is_temporal);
  if (pred >= temporal_.size()) return kEmptyRelation;
  auto it = temporal_[pred].find(time);
  if (it == temporal_[pred].end()) return kEmptyRelation;
  return it->second;
}

const std::map<int64_t, Relation>& Interpretation::Timeline(
    PredicateId pred) const {
  assert(vocab_->predicate(pred).is_temporal);
  if (pred >= temporal_.size()) return kEmptyTimeline;
  return temporal_[pred];
}

int64_t Interpretation::MaxTime() const {
  int64_t max_time = -1;
  for (std::size_t p = 0; p < temporal_.size(); ++p) {
    const auto& timeline = temporal_[p];
    if (!timeline.empty()) {
      max_time = std::max(max_time, timeline.rbegin()->first);
    }
  }
  return max_time;
}

void Interpretation::ForEach(
    const std::function<void(PredicateId, int64_t, const Tuple&)>& fn) const {
  Tuple scratch;
  for (std::size_t p = 0; p < non_temporal_.size(); ++p) {
    PredicateId pred = static_cast<PredicateId>(p);
    if (vocab_->predicate(pred).is_temporal) {
      for (const auto& [time, rel] : temporal_[p]) {
        for (uint32_t row = 0; row < rel.size(); ++row) {
          rel.CopyRow(row, &scratch);
          fn(pred, time, scratch);
        }
      }
    } else {
      const Relation& rel = non_temporal_[p];
      for (uint32_t row = 0; row < rel.size(); ++row) {
        rel.CopyRow(row, &scratch);
        fn(pred, 0, scratch);
      }
    }
  }
}

Interpretation Interpretation::Truncate(int64_t m) const {
  Interpretation out = *this;
  out.TruncateInPlace(m);
  return out;
}

void Interpretation::TruncateInPlace(int64_t m) {
  for (auto& timeline : temporal_) {
    auto it = timeline.upper_bound(m);
    while (it != timeline.end()) {
      size_ -= it->second.size();
      it = timeline.erase(it);
    }
  }
  // Truncated snapshots revert to the empty state, whose hash is the map's
  // implicit default (0).
  for (auto it = snapshot_hashes_.begin(); it != snapshot_hashes_.end();) {
    it = it->first > m ? snapshot_hashes_.erase(it) : std::next(it);
  }
  // Snapshot indexes of the erased suffix address erased relations; indexes
  // of surviving snapshots stay valid (row ids are positional and those
  // relations are untouched).
  for (auto& per_pred : t_index_) {
    per_pred.erase(per_pred.upper_bound(m), per_pred.end());
  }
}

bool Interpretation::NonTemporalEquals(const Interpretation& other) const {
  std::size_t n = std::max(non_temporal_.size(), other.non_temporal_.size());
  for (std::size_t p = 0; p < n; ++p) {
    const Relation& a =
        p < non_temporal_.size() ? non_temporal_[p] : kEmptyRelation;
    const Relation& b = p < other.non_temporal_.size()
                            ? other.non_temporal_[p]
                            : kEmptyRelation;
    if (a != b) return false;
  }
  return true;
}

bool Interpretation::SegmentEquals(const Interpretation& other, int64_t m,
                                   bool and_non_temporal) const {
  if (and_non_temporal && !NonTemporalEquals(other)) return false;
  std::size_t n = std::max(temporal_.size(), other.temporal_.size());
  for (std::size_t p = 0; p < n; ++p) {
    const auto& ta = p < temporal_.size() ? temporal_[p] : kEmptyTimeline;
    const auto& tb =
        p < other.temporal_.size() ? other.temporal_[p] : kEmptyTimeline;
    auto ia = ta.begin();
    auto ib = tb.begin();
    while (true) {
      // Skip empty cells (can arise from operator[] on the timeline).
      while (ia != ta.end() && (ia->first > m || ia->second.empty())) ++ia;
      while (ib != tb.end() && (ib->first > m || ib->second.empty())) ++ib;
      bool ea = (ia == ta.end() || ia->first > m);
      bool eb = (ib == tb.end() || ib->first > m);
      if (ea || eb) {
        if (ea != eb) return false;
        break;
      }
      if (ia->first != ib->first || ia->second != ib->second) return false;
      ++ia;
      ++ib;
    }
  }
  return true;
}

bool operator==(const Interpretation& a, const Interpretation& b) {
  int64_t m = std::max(a.MaxTime(), b.MaxTime());
  return a.SegmentEquals(b, m, /*and_non_temporal=*/true);
}

}  // namespace chronolog
