#include "storage/relation.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace chronolog {

namespace {

constexpr uint64_t kLowBits = 0x0101010101010101ULL;
constexpr uint64_t kHighBits = 0x8080808080808080ULL;

inline uint64_t LoadGroup(const uint8_t* p) {
  uint64_t g;
  std::memcpy(&g, p, sizeof(g));
  return g;
}

/// Bytes of `g` equal to `byte`, marked by their high bit. The SWAR
/// subtraction can report false positives for occupied slots whose tag
/// shares low bits with `byte` — harmless, every hit is verified against the
/// stored row — but never for empty slots: an empty control byte (0x80) has
/// its high bit set, which clears the corresponding bit of `~x`.
inline uint64_t MatchByte(uint64_t g, uint8_t byte) {
  const uint64_t x = g ^ (kLowBits * byte);
  return (x - kLowBits) & ~x & kHighBits;
}

inline uint8_t TagOf(std::size_t hash) {
  return static_cast<uint8_t>(hash >> 57) & 0x7f;
}

}  // namespace

Relation::Relation(const Relation& other)
    : cols_(other.cols_),
      num_rows_(other.num_rows_),
      arity_(other.arity_),
      arity_set_(other.arity_set_),
      ctrl_(other.ctrl_),
      slots_(other.slots_),
      cap_(other.cap_) {
  std::lock_guard<std::mutex> lock(other.distinct_mutex_);
  distinct_cache_ = other.distinct_cache_;
}

Relation& Relation::operator=(const Relation& other) {
  if (this == &other) return *this;
  cols_ = other.cols_;
  num_rows_ = other.num_rows_;
  arity_ = other.arity_;
  arity_set_ = other.arity_set_;
  ctrl_ = other.ctrl_;
  slots_ = other.slots_;
  cap_ = other.cap_;
  std::lock_guard<std::mutex> lock(other.distinct_mutex_);
  distinct_cache_ = other.distinct_cache_;
  return *this;
}

Relation::Relation(Relation&& other) noexcept
    : cols_(std::move(other.cols_)),
      num_rows_(other.num_rows_),
      arity_(other.arity_),
      arity_set_(other.arity_set_),
      ctrl_(std::move(other.ctrl_)),
      slots_(std::move(other.slots_)),
      cap_(other.cap_),
      distinct_cache_(std::move(other.distinct_cache_)) {
  other.num_rows_ = 0;
  other.cap_ = 0;
}

Relation& Relation::operator=(Relation&& other) noexcept {
  if (this == &other) return *this;
  cols_ = std::move(other.cols_);
  num_rows_ = other.num_rows_;
  arity_ = other.arity_;
  arity_set_ = other.arity_set_;
  ctrl_ = std::move(other.ctrl_);
  slots_ = std::move(other.slots_);
  cap_ = other.cap_;
  distinct_cache_ = std::move(other.distinct_cache_);
  other.num_rows_ = 0;
  other.cap_ = 0;
  return *this;
}

void Relation::SetCtrl(std::size_t slot, uint8_t byte) {
  ctrl_[slot] = byte;
  if (slot < kGroup - 1) ctrl_[cap_ + slot] = byte;  // mirrored tail
}

std::size_t Relation::HashOfRow(std::size_t row) const {
  std::size_t seed = arity_;
  for (std::size_t c = 0; c < arity_; ++c) {
    HashCombine(seed, static_cast<std::size_t>(cols_[c][row]));
  }
  return Mix64(seed);
}

bool Relation::RowEqualsData(std::size_t row, const SymbolId* data,
                             std::size_t n) const {
  for (std::size_t c = 0; c < n; ++c) {
    if (cols_[c][row] != data[c]) return false;
  }
  return true;
}

uint32_t Relation::FindRow(const SymbolId* data, std::size_t n,
                           std::size_t hash, std::size_t* insert_slot) const {
  const std::size_t mask = cap_ - 1;
  const uint8_t tag = TagOf(hash);
  std::size_t idx = hash & mask;
  while (true) {
    const uint64_t g = LoadGroup(ctrl_.data() + idx);
    for (uint64_t m = MatchByte(g, tag); m != 0; m &= m - 1) {
      const std::size_t slot =
          (idx + (static_cast<std::size_t>(__builtin_ctzll(m)) >> 3)) & mask;
      const uint32_t row = slots_[slot];
      if (RowEqualsData(row, data, n)) return row;
    }
    const uint64_t empties = g & kHighBits;
    if (empties != 0) {
      if (insert_slot != nullptr) {
        *insert_slot =
            (idx + (static_cast<std::size_t>(__builtin_ctzll(empties)) >> 3)) &
            mask;
      }
      return kNotFound;
    }
    idx = (idx + kGroup) & mask;
  }
}

void Relation::PlaceRow(std::size_t row, std::size_t hash) {
  const std::size_t mask = cap_ - 1;
  std::size_t idx = hash & mask;
  while (true) {
    const uint64_t g = LoadGroup(ctrl_.data() + idx);
    const uint64_t empties = g & kHighBits;
    if (empties != 0) {
      const std::size_t slot =
          (idx + (static_cast<std::size_t>(__builtin_ctzll(empties)) >> 3)) &
          mask;
      SetCtrl(slot, TagOf(hash));
      slots_[slot] = static_cast<uint32_t>(row);
      return;
    }
    idx = (idx + kGroup) & mask;
  }
}

void Relation::Grow() {
  cap_ = cap_ == 0 ? 16 : cap_ * 2;
  ctrl_.assign(cap_ + kGroup - 1, kEmpty);
  slots_.assign(cap_, 0);
  // Rows are unique by construction, so re-placement needs no equality
  // probes — just the first free slot on each row's probe path.
  for (std::size_t row = 0; row < num_rows_; ++row) {
    PlaceRow(row, HashOfRow(row));
  }
}

bool Relation::Insert(const SymbolId* data, std::size_t n) {
  if (!arity_set_) {
    arity_ = static_cast<uint32_t>(n);
    arity_set_ = true;
    cols_.resize(n);
  }
  assert(n == arity_);
  // Grow at 7/8 load (keeps probe sequences short; amortised O(1)).
  if (cap_ == 0 || (num_rows_ + 1) * 8 > cap_ * 7) Grow();
  const std::size_t hash = RowHash(data, n);
  std::size_t insert_slot = 0;
  if (FindRow(data, n, hash, &insert_slot) != kNotFound) return false;
  SetCtrl(insert_slot, TagOf(hash));
  slots_[insert_slot] = num_rows_;
  for (std::size_t c = 0; c < n; ++c) cols_[c].push_back(data[c]);
  ++num_rows_;
  return true;
}

bool Relation::Contains(const SymbolId* data, std::size_t n) const {
  if (num_rows_ == 0) return false;
  assert(n == arity_);
  return FindRow(data, n, RowHash(data, n), nullptr) != kNotFound;
}

Tuple Relation::Row(std::size_t row) const {
  Tuple out;
  CopyRow(row, &out);
  return out;
}

void Relation::CopyRow(std::size_t row, Tuple* out) const {
  out->clear();
  out->reserve(arity_);
  for (std::size_t c = 0; c < arity_; ++c) out->push_back(cols_[c][row]);
}

bool operator==(const Relation& a, const Relation& b) {
  if (a.num_rows_ != b.num_rows_) return false;
  if (a.num_rows_ == 0) return true;
  if (a.arity_ != b.arity_) return false;
  Tuple scratch;
  for (std::size_t row = 0; row < a.num_rows_; ++row) {
    a.CopyRow(row, &scratch);
    if (!b.Contains(scratch.data(), scratch.size())) return false;
  }
  return true;
}

std::size_t Relation::DistinctInColumn(std::size_t col) const {
  if (num_rows_ == 0 || col >= arity_) return 1;
  // The cache resize and refresh below are writes from a const method, so
  // concurrent planners must serialise here (they used to race: TSan caught
  // two workers resizing `distinct_cache_` under the parallel evaluator).
  // Sampling runs under the lock too — redundant refreshes would be wasted
  // work, and the sample is bounded (~1k rows) so the hold time is short.
  std::lock_guard<std::mutex> lock(distinct_mutex_);
  if (distinct_cache_.size() < arity_) distinct_cache_.resize(arity_, {0, 0});
  auto& [rows_at, estimate] = distinct_cache_[col];
  if (rows_at != 0 && num_rows_ <= 2 * static_cast<std::size_t>(rows_at)) {
    return estimate;
  }
  constexpr std::size_t kSample = 1024;
  const std::size_t step = std::max<std::size_t>(1, num_rows_ / kSample);
  std::vector<SymbolId> sample;
  sample.reserve(std::min<std::size_t>(num_rows_, kSample + 1));
  const std::vector<SymbolId>& column = cols_[col];
  for (std::size_t row = 0; row < num_rows_; row += step) {
    sample.push_back(column[row]);
  }
  std::sort(sample.begin(), sample.end());
  const std::size_t distinct = static_cast<std::size_t>(
      std::unique(sample.begin(), sample.end()) - sample.begin());
  std::size_t result;
  if (step == 1) {
    result = distinct;  // exact
  } else if (distinct == sample.size()) {
    // Every sampled value was fresh: treat the column as (near-)unique.
    result = num_rows_;
  } else {
    // Constant-fan-out extrapolation: rows / (sampled / distinct).
    result = std::max<std::size_t>(1, num_rows_ * distinct / sample.size());
  }
  result = std::max<std::size_t>(1, std::min<std::size_t>(result, num_rows_));
  rows_at = num_rows_;
  estimate = static_cast<uint32_t>(result);
  return result;
}

}  // namespace chronolog
