#ifndef CHRONOLOG_STORAGE_TUPLE_H_
#define CHRONOLOG_STORAGE_TUPLE_H_

#include <unordered_set>
#include <vector>

#include "util/hash.h"
#include "util/symbol_table.h"

namespace chronolog {

/// The non-temporal argument vector of a ground atom. Constants are interned
/// symbols, so a tuple is a plain integer vector.
using Tuple = std::vector<SymbolId>;

/// Deduplicated set of tuples of one predicate (at one time point, for
/// temporal predicates).
using TupleSet = std::unordered_set<Tuple, VectorHash>;

}  // namespace chronolog

#endif  // CHRONOLOG_STORAGE_TUPLE_H_
