#ifndef CHRONOLOG_STORAGE_TUPLE_H_
#define CHRONOLOG_STORAGE_TUPLE_H_

#include <cstddef>
#include <vector>

#include "util/hash.h"
#include "util/symbol_table.h"

namespace chronolog {

/// The non-temporal argument vector of a ground atom. Constants are interned
/// symbols, so a tuple is a plain integer vector. Bulk storage does not hold
/// Tuples: relations keep their rows in columnar form (storage/relation.h)
/// and materialise a Tuple only at API boundaries.
using Tuple = std::vector<SymbolId>;

/// Pre-finalization hash of one time-projected fact `(pred, args)` — the
/// shared inner value both fact-hash families finalize. Factored out so
/// computing the pair (FactHash, FactHash2) walks the tuple once. The span
/// overload hashes `args[0..n)` identically, letting columnar storage feed
/// gathered rows without building a Tuple.
inline std::size_t FactHashBase(std::size_t pred, const SymbolId* args,
                                std::size_t n) {
  std::size_t seed = n;
  HashCombine(seed, pred);
  return HashRange(args, n, seed);
}
inline std::size_t FactHashBase(std::size_t pred, const Tuple& args) {
  return FactHashBase(pred, args.data(), args.size());
}

/// Finalized hash of one time-projected fact `(pred, args)` — the unit of the
/// order-independent snapshot hash. `State::Hash()` and the incrementally
/// maintained `Interpretation::SnapshotHash()` both sum these per-fact values
/// (plus the fact count), so the two must use the exact same definition.
inline std::size_t FactHash(std::size_t pred, const Tuple& args) {
  return Mix64(FactHashBase(pred, args));
}

/// Companion hash of the same fact under the second finalizer (Mix64b).
/// `State::Hash2()` / `Interpretation::SnapshotHash2()` sum these; snapshot
/// comparison falls back to an exact check only when *both* families agree,
/// which makes undetected collisions require two simultaneous 64-bit
/// coincidences.
inline std::size_t FactHash2(std::size_t pred, const Tuple& args) {
  return Mix64b(FactHashBase(pred, args));
}

}  // namespace chronolog

#endif  // CHRONOLOG_STORAGE_TUPLE_H_
