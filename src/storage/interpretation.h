#ifndef CHRONOLOG_STORAGE_INTERPRETATION_H_
#define CHRONOLOG_STORAGE_INTERPRETATION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "ast/atom.h"
#include "ast/program.h"
#include "ast/vocabulary.h"
#include "storage/relation.h"
#include "storage/tuple.h"

namespace chronolog {

/// A finite fragment of a Herbrand interpretation of a TDD: for every
/// temporal predicate a snapshot index `time -> relation`, for every
/// non-temporal predicate a columnar relation (the paper's `M_nt`).
///
/// Interpretations are the working store of every evaluator in chronolog:
/// `T_{Z∧D}` maps interpretations to interpretations, algorithm BT iterates
/// truncated interpretations, and the primary database `B` of a relational
/// specification is an interpretation restricted to representative times.
class Interpretation {
 public:
  explicit Interpretation(std::shared_ptr<Vocabulary> vocab);

  // Copies carry the facts but not the lazily built column indexes (a copy
  // rebuilds its own on demand). Moves keep them: row ids are positional and
  // the relations they index move along.
  Interpretation(const Interpretation& other);
  Interpretation& operator=(const Interpretation& other);
  Interpretation(Interpretation&&) = default;
  Interpretation& operator=(Interpretation&&) = default;

  const Vocabulary& vocab() const { return *vocab_; }
  const std::shared_ptr<Vocabulary>& vocab_ptr() const { return vocab_; }

  /// Inserts a fact; returns true when it was new. For temporal predicates,
  /// `time` must be >= 0. The span overload copies `args[0..n)` straight
  /// into the columnar store — the allocation-free path the fixpoint merge
  /// loops use.
  bool Insert(const GroundAtom& fact);
  bool Insert(PredicateId pred, int64_t time, const Tuple& args);
  bool Insert(PredicateId pred, int64_t time, const SymbolId* args,
              std::size_t n);

  /// Inserts every fact of `db`.
  void InsertDatabase(const Database& db);

  bool Contains(const GroundAtom& fact) const;
  bool Contains(PredicateId pred, int64_t time, const Tuple& args) const;

  /// Number of stored facts (temporal + non-temporal).
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Tuples of a non-temporal predicate, as a columnar relation.
  const Relation& NonTemporal(PredicateId pred) const;

  /// Tuples of a temporal predicate at `time` — one cell of the paper's
  /// snapshot `M(t)`. Returns an empty relation when nothing is stored there.
  const Relation& Snapshot(PredicateId pred, int64_t time) const;

  /// All populated time points of a temporal predicate, ascending.
  const std::map<int64_t, Relation>& Timeline(PredicateId pred) const;

  /// Largest time point carrying any temporal fact; -1 when none.
  int64_t MaxTime() const;

  /// O(1) content hash of the state `M[time]` (the snapshot with the
  /// temporal argument projected out), maintained incrementally on every
  /// insert: equals `State::FromInterpretation(*this, time).Hash()` without
  /// materialising the state. Empty snapshots hash to 0. Equal hashes do not
  /// prove equal states — verify collisions with SnapshotEquals.
  std::size_t SnapshotHash(int64_t time) const;

  /// Second, independently finalized content hash of `M[time]` (see
  /// FactHash2), maintained in the same map entry as SnapshotHash so one
  /// insert updates both with a single lookup: equals
  /// `State::FromInterpretation(*this, time).Hash2()`.
  std::size_t SnapshotHash2(int64_t time) const;

  /// Exact comparison of the states `M[t1]` and `M[t2]`, in place (no State
  /// materialisation) — the hash-collision verification step of the period
  /// detectors. When snapshot hashing is enabled the walk is prefiltered by
  /// the (SnapshotHash, SnapshotHash2) pairs: any disagreement proves the
  /// states differ, so the exact per-timeline comparison only runs when
  /// both hash families agree.
  bool SnapshotEquals(int64_t t1, int64_t t2) const;

  /// Turns off snapshot-hash maintenance for this instance. For scratch
  /// interpretations (semi-naive deltas, per-task derivation buffers) that
  /// are only enumerated and merged, never queried through SnapshotHash:
  /// skipping the per-insert hash update keeps the hot derivation path free
  /// of the bookkeeping. Irreversible; copies inherit the setting;
  /// SnapshotHash must not be called afterwards (asserts).
  void DisableSnapshotHashing();

  /// Enumerates every stored fact. `fn` receives (pred, time, tuple); `time`
  /// is 0 for non-temporal predicates. The Tuple reference points at a
  /// scratch buffer that is overwritten between calls — callbacks must copy
  /// whatever they keep (all in-tree consumers insert or serialise).
  void ForEach(
      const std::function<void(PredicateId, int64_t, const Tuple&)>& fn) const;

  /// Copy of this interpretation with every temporal fact at time > `m`
  /// removed — the paper's `L'(0...m) ∪ L'_nt` truncation used by BT.
  Interpretation Truncate(int64_t m) const;

  /// Removes (in place) every temporal fact at time > `m`.
  void TruncateInPlace(int64_t m);

  /// True when both interpretations contain the same non-temporal facts.
  bool NonTemporalEquals(const Interpretation& other) const;

  /// True when both interpretations coincide on the segment `[0...m]`
  /// (and, with `and_non_temporal`, on the non-temporal part too) — the
  /// termination test of algorithm BT.
  bool SegmentEquals(const Interpretation& other, int64_t m,
                     bool and_non_temporal = true) const;

  friend bool operator==(const Interpretation& a, const Interpretation& b);

  /// Column-index probes for hash joins. Returns the row ids (into the
  /// relation `NonTemporal(pred)` / `Snapshot(pred, time)`) of the tuples
  /// whose column `col` equals `value`, or nullptr when there are none. The
  /// index for a (pred, [time,] col) combination is built lazily on first
  /// probe and maintained by subsequent inserts.
  ///
  /// Invalidation contract: row ids are positional, so — unlike the tuple
  /// pointers this API used to return — they survive further inserts and
  /// moves of the interpretation. A returned bucket pointer stays valid
  /// until the interpretation is copied over or truncated (both drop the
  /// affected indexes); the bucket may grow while held. Debug builds assert
  /// that every bucket's row ids lie inside the relation they index.
  const std::vector<uint32_t>* ProbeNonTemporal(PredicateId pred, uint32_t col,
                                                SymbolId value) const;
  const std::vector<uint32_t>* ProbeSnapshot(PredicateId pred, int64_t time,
                                             uint32_t col,
                                             SymbolId value) const;

  /// Concurrent-probe mode: while enabled, lazy index construction inside
  /// ProbeNonTemporal / ProbeSnapshot is guarded by a reader-writer lock so
  /// that multiple threads may probe this interpretation simultaneously
  /// (the parallel semi-naive evaluator probes `full` and `delta` from every
  /// worker). Inserts remain single-threaded: callers must still serialise
  /// Insert/Truncate against probes. Disabled (no locking, identical to the
  /// historical behaviour) by default.
  void SetConcurrentProbes(bool enabled);

  /// True while concurrent-probe mode is on. The join planner uses this as
  /// a "parallel phase in progress" signal: re-planning swaps the cached
  /// JoinPlan in place, which is only safe while evaluation is
  /// single-threaded. (Sampling column statistics is not the issue —
  /// Relation::DistinctInColumn synchronises internally.)
  bool concurrent_probes() const { return probe_mu_ != nullptr; }

 private:
  /// value -> row-id bucket map of one indexed column.
  struct ColumnBuckets {
    std::unordered_map<SymbolId, std::vector<uint32_t>> buckets;
  };

  std::shared_ptr<Vocabulary> vocab_;
  // Indexed by PredicateId. Exactly one of the two slots is meaningful per
  // predicate; both are default-constructed for uniformity.
  std::vector<Relation> non_temporal_;
  std::vector<std::map<int64_t, Relation>> temporal_;
  std::size_t size_ = 0;

  // Per-timestep state hashes: snapshot_hashes_[t] ==
  // {State::FromInterpretation(*this, t).Hash(), ...Hash2()}. Each combine is
  // a commutative sum of finalized per-fact hashes plus the fact count, so
  // one insert is two O(1) `+=`s over one shared inner hash, and absent
  // entries mean the empty-state hash pair (0, 0).
  struct SnapshotHashPair {
    std::size_t h1 = 0;
    std::size_t h2 = 0;
  };
  std::unordered_map<int64_t, SnapshotHashPair> snapshot_hashes_;
  bool snapshot_hashing_ = true;

  // Lazily built column indexes (see ProbeNonTemporal / ProbeSnapshot).
  // The temporal index is keyed time-first so that an insert into snapshot
  // `t` only touches the column indexes of `t` (a map lookup), never the
  // entries of other snapshots, and so truncation can drop exactly the
  // indexes of the truncated suffix.
  mutable std::vector<std::map<uint32_t, ColumnBuckets>> nt_index_;
  mutable std::vector<std::map<int64_t, std::map<uint32_t, ColumnBuckets>>>
      t_index_;
  // Non-null while concurrent-probe mode is on (see SetConcurrentProbes).
  mutable std::unique_ptr<std::shared_mutex> probe_mu_;

  void EnsurePred(PredicateId pred);
  void IndexInsertedRow(PredicateId pred, bool temporal, int64_t time,
                        const Relation& rel, uint32_t row);
  static const std::vector<uint32_t>* FindBucket(const ColumnBuckets& index,
                                                 const Relation& rel,
                                                 SymbolId value);
};

}  // namespace chronolog

#endif  // CHRONOLOG_STORAGE_INTERPRETATION_H_
